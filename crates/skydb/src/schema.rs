//! Table schemas, constraints, and the database catalog.
//!
//! The Palomar-Quest repository's data model (paper Fig. 1) is a graph of 23
//! tables related by primary/foreign keys: "A primary key is defined in each
//! table to force data uniqueness. Most tables have one or more foreign keys
//! to maintain parent-child relationships." The catalog validates that graph
//! and exposes the **parent-before-child topological order** that the
//! bulk-loading algorithm must follow (paper Fig. 2).

use std::collections::HashMap;

use crate::error::{DbError, DbResult};
use crate::expr::Expr;
use crate::value::DataType;

/// One column definition.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// `false` adds an implicit NOT NULL constraint.
    pub nullable: bool,
}

impl ColumnDef {
    /// A NOT NULL column.
    pub fn required(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }
}

/// A foreign-key constraint: `columns` on this table reference the primary
/// key of `parent_table`.
#[derive(Debug, Clone)]
pub struct ForeignKeyDef {
    /// Constraint name (e.g. `fk_objects_frame`).
    pub name: String,
    /// Referencing column positions on the child table.
    pub columns: Vec<usize>,
    /// Referenced (parent) table name.
    pub parent_table: String,
}

/// A named CHECK constraint.
#[derive(Debug, Clone)]
pub struct CheckDef {
    /// Constraint name.
    pub name: String,
    /// Expression that must not evaluate to FALSE (SQL semantics: NULL passes).
    pub expr: Expr,
}

/// A named UNIQUE constraint over a set of columns.
#[derive(Debug, Clone)]
pub struct UniqueDef {
    /// Constraint name.
    pub name: String,
    /// Column positions.
    pub columns: Vec<usize>,
}

/// A full table definition.
#[derive(Debug, Clone)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns, in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Primary-key column positions (non-empty).
    pub primary_key: Vec<usize>,
    /// Foreign keys to parent tables.
    pub foreign_keys: Vec<ForeignKeyDef>,
    /// Additional unique constraints.
    pub uniques: Vec<UniqueDef>,
    /// CHECK constraints.
    pub checks: Vec<CheckDef>,
}

/// Builder for [`TableSchema`] with by-name column references.
#[derive(Debug)]
pub struct TableBuilder {
    schema: TableSchema,
}

impl TableBuilder {
    /// Start a table named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder {
            schema: TableSchema {
                name: name.into(),
                columns: Vec::new(),
                primary_key: Vec::new(),
                foreign_keys: Vec::new(),
                uniques: Vec::new(),
                checks: Vec::new(),
            },
        }
    }

    /// Add a NOT NULL column.
    pub fn col(mut self, name: &str, dtype: DataType) -> Self {
        self.schema.columns.push(ColumnDef::required(name, dtype));
        self
    }

    /// Add a nullable column.
    pub fn col_null(mut self, name: &str, dtype: DataType) -> Self {
        self.schema.columns.push(ColumnDef::nullable(name, dtype));
        self
    }

    fn col_index(&self, name: &str) -> usize {
        self.schema
            .columns
            .iter()
            .position(|c| c.name == name)
            .unwrap_or_else(|| panic!("table {}: unknown column {name}", self.schema.name))
    }

    /// Declare the primary key over the named columns.
    pub fn pk(mut self, cols: &[&str]) -> Self {
        self.schema.primary_key = cols.iter().map(|c| self.col_index(c)).collect();
        self
    }

    /// Declare a foreign key: named columns reference `parent`'s primary key.
    pub fn fk(mut self, name: &str, cols: &[&str], parent: &str) -> Self {
        let columns = cols.iter().map(|c| self.col_index(c)).collect();
        self.schema.foreign_keys.push(ForeignKeyDef {
            name: name.into(),
            columns,
            parent_table: parent.into(),
        });
        self
    }

    /// Declare a unique constraint over the named columns.
    pub fn unique(mut self, name: &str, cols: &[&str]) -> Self {
        let columns = cols.iter().map(|c| self.col_index(c)).collect();
        self.schema.uniques.push(UniqueDef {
            name: name.into(),
            columns,
        });
        self
    }

    /// Declare a CHECK constraint.
    pub fn check(mut self, name: &str, expr: Expr) -> Self {
        self.schema.checks.push(CheckDef {
            name: name.into(),
            expr,
        });
        self
    }

    /// Finish, validating the definition.
    pub fn build(self) -> DbResult<TableSchema> {
        let s = self.schema;
        if s.columns.is_empty() {
            return Err(DbError::InvalidSchema(format!(
                "table {} has no columns",
                s.name
            )));
        }
        if s.primary_key.is_empty() {
            return Err(DbError::InvalidSchema(format!(
                "table {} has no primary key (every repository table declares one)",
                s.name
            )));
        }
        let ncols = s.columns.len();
        let mut names = std::collections::HashSet::new();
        for c in &s.columns {
            if !names.insert(c.name.as_str()) {
                return Err(DbError::InvalidSchema(format!(
                    "table {}: duplicate column {}",
                    s.name, c.name
                )));
            }
        }
        for &i in s.primary_key.iter().chain(
            s.foreign_keys
                .iter()
                .flat_map(|f| f.columns.iter())
                .chain(s.uniques.iter().flat_map(|u| u.columns.iter())),
        ) {
            if i >= ncols {
                return Err(DbError::InvalidSchema(format!(
                    "table {}: constraint references column index {i} out of range",
                    s.name
                )));
            }
        }
        for chk in &s.checks {
            if let Some(max) = chk.expr.max_column() {
                if max >= ncols {
                    return Err(DbError::InvalidSchema(format!(
                        "table {}: check {} references column index {max} out of range",
                        s.name, chk.name
                    )));
                }
            }
        }
        // Primary-key columns are implicitly NOT NULL.
        Ok(s)
    }
}

impl TableSchema {
    /// Find a column position by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Approximate row width in bytes, used for sizing decisions.
    pub fn row_width_hint(&self) -> usize {
        self.columns.iter().map(|c| c.dtype.width_hint() + 1).sum()
    }
}

/// A complete database schema: a set of tables whose FK graph must be acyclic.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<TableSchema>,
    by_name: HashMap<String, usize>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Add a table. Parent tables referenced by its foreign keys must
    /// already be present (this enforces definition in topological order,
    /// matching how DDL scripts are written).
    pub fn add_table(&mut self, table: TableSchema) -> DbResult<TableId> {
        if self.by_name.contains_key(&table.name) {
            return Err(DbError::AlreadyExists(table.name));
        }
        for fk in &table.foreign_keys {
            let parent = self.table_by_name(&fk.parent_table).ok_or_else(|| {
                DbError::InvalidSchema(format!(
                    "table {}: foreign key {} references unknown table {} (define parents first)",
                    table.name, fk.name, fk.parent_table
                ))
            })?;
            if parent.primary_key.len() != fk.columns.len() {
                return Err(DbError::InvalidSchema(format!(
                    "table {}: foreign key {} has {} columns but {}'s primary key has {}",
                    table.name,
                    fk.name,
                    fk.columns.len(),
                    fk.parent_table,
                    parent.primary_key.len()
                )));
            }
            for (child_col, parent_col) in fk.columns.iter().zip(parent.primary_key.iter()) {
                let ct = table.columns[*child_col].dtype;
                let pt = parent.columns[*parent_col].dtype;
                if ct != pt {
                    return Err(DbError::InvalidSchema(format!(
                        "table {}: foreign key {} column type {ct} does not match parent type {pt}",
                        table.name, fk.name
                    )));
                }
            }
        }
        let id = TableId(self.tables.len() as u32);
        self.by_name.insert(table.name.clone(), self.tables.len());
        self.tables.push(table);
        Ok(id)
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` if the catalog has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Look up a table id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).map(|&i| TableId(i as u32))
    }

    /// Look up a table schema by name.
    pub fn table_by_name(&self, name: &str) -> Option<&TableSchema> {
        self.by_name.get(name).map(|&i| &self.tables[i])
    }

    /// Look up a table schema by id.
    pub fn table(&self, id: TableId) -> &TableSchema {
        &self.tables[id.0 as usize]
    }

    /// Iterate over `(id, schema)` pairs in definition order.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &TableSchema)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u32), t))
    }

    /// The **parent-before-child** topological order of all tables.
    ///
    /// This is the loading order of paper Fig. 2: "Loading must be in the
    /// order: Parent, Child, Grandchild." `add_table` requires parents to be
    /// defined first, so definition order starts out topological — but a
    /// shadow→live [`Catalog::swap_names`] can rebind names such that a
    /// later-defined table becomes the parent of an earlier one. A real Kahn
    /// sort (lowest-id-first among ready tables, so the order is
    /// deterministic and equals definition order whenever that order is
    /// already valid) keeps the invariant instead of merely asserting it.
    ///
    /// # Panics
    /// Panics if the FK graph has a cycle (impossible via `add_table` +
    /// `swap_names`, both of which preserve acyclicity).
    pub fn topological_order(&self) -> Vec<TableId> {
        let n = self.tables.len();
        // In-degree counts ignore self-references (rare, e.g. hierarchies).
        let mut indegree = vec![0usize; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, t) in self.tables.iter().enumerate() {
            for fk in &t.foreign_keys {
                let p = self.by_name[&fk.parent_table];
                if p != i {
                    indegree[i] += 1;
                    children[p].push(i);
                }
            }
        }
        let mut order = Vec::with_capacity(n);
        // Min-id-first ready set: deterministic, and identical to definition
        // order when definition order is already topological.
        let mut ready: std::collections::BTreeSet<usize> =
            (0..n).filter(|&i| indegree[i] == 0).collect();
        while let Some(&i) = ready.iter().next() {
            ready.remove(&i);
            order.push(TableId(i as u32));
            for &c in &children[i] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    ready.insert(c);
                }
            }
        }
        assert!(
            order.len() == n,
            "catalog FK graph has a cycle: only {} of {n} tables sorted",
            order.len()
        );
        order
    }

    /// Depth of each table in the FK DAG (parents = 0, children = 1 + max
    /// parent depth). Used by tests and reports. Computed over the
    /// topological order so it stays correct after a name swap reorders the
    /// parent/child relation relative to definition order.
    pub fn fk_depths(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.tables.len()];
        for id in self.topological_order() {
            let i = id.index();
            for fk in &self.tables[i].foreign_keys {
                let p = self.by_name[&fk.parent_table];
                if p != i {
                    depth[i] = depth[i].max(depth[p] + 1);
                }
            }
        }
        depth
    }

    /// Atomically rebind table names pairwise: for each `(live, shadow)`
    /// pair, the table currently named `live` becomes `shadow` and vice
    /// versa, and every foreign key in the catalog that referenced a swapped
    /// name is rewritten through the pair map so the FK *graph over table
    /// ids* is unchanged. This is the catalog half of a reprocessing
    /// campaign's shadow→live swap: physical table ids (and thus heaps,
    /// indexes, and the WAL) never move; only the name binding does.
    ///
    /// Validates before mutating: both names of every pair must exist, be
    /// distinct, and appear in at most one pair. Returns the `(id_of_live,
    /// id_of_shadow)` pairs as bound *before* the swap.
    ///
    /// Note this rewrites FK `parent_table` strings on *all* tables (swapped
    /// or not), so callers caching a `TableSchema` snapshot of any table
    /// whose parents were swapped must refresh it.
    pub fn swap_names(&mut self, pairs: &[(String, String)]) -> DbResult<Vec<(TableId, TableId)>> {
        let mut seen = std::collections::HashSet::new();
        let mut ids = Vec::with_capacity(pairs.len());
        for (a, b) in pairs {
            if a == b {
                return Err(DbError::InvalidSchema(format!(
                    "swap_names: cannot swap {a} with itself"
                )));
            }
            let ia = self
                .table_id(a)
                .ok_or_else(|| DbError::InvalidSchema(format!("swap_names: no such table {a}")))?;
            let ib = self
                .table_id(b)
                .ok_or_else(|| DbError::InvalidSchema(format!("swap_names: no such table {b}")))?;
            if !seen.insert(a.clone()) || !seen.insert(b.clone()) {
                return Err(DbError::InvalidSchema(format!(
                    "swap_names: table named in more than one pair ({a}, {b})"
                )));
            }
            ids.push((ia, ib));
        }
        // Build the bidirectional rename map, then apply: rebind by_name,
        // rename the schemas in place, and rewrite every FK parent ref.
        let mut rename: HashMap<&str, &str> = HashMap::new();
        for (a, b) in pairs {
            rename.insert(a.as_str(), b.as_str());
            rename.insert(b.as_str(), a.as_str());
        }
        let mut renamed: Vec<(usize, String)> = Vec::new();
        let mut fk_rewrites: Vec<(usize, usize, String)> = Vec::new();
        for (i, t) in self.tables.iter().enumerate() {
            if let Some(n) = rename.get(t.name.as_str()) {
                renamed.push((i, n.to_string()));
            }
            for (k, fk) in t.foreign_keys.iter().enumerate() {
                if let Some(n) = rename.get(fk.parent_table.as_str()) {
                    fk_rewrites.push((i, k, n.to_string()));
                }
            }
        }
        // Remove every old binding first, then insert the new ones: a
        // remove-after-insert interleaving would delete a binding another
        // pair member just created under the same name.
        for (i, _) in &renamed {
            let old = self.tables[*i].name.clone();
            self.by_name.remove(&old);
        }
        for (i, new_name) in renamed {
            self.tables[i].name = new_name.clone();
            self.by_name.insert(new_name, i);
        }
        for (i, k, parent) in fk_rewrites {
            self.tables[i].foreign_keys[k].parent_table = parent;
        }
        Ok(ids)
    }
}

/// Identifier of a table within a catalog / engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl TableId {
    /// The id as a usize for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    fn frames() -> TableSchema {
        TableBuilder::new("frames")
            .col("frame_id", DataType::Int)
            .col("exposure", DataType::Float)
            .pk(&["frame_id"])
            .build()
            .unwrap()
    }

    fn objects() -> TableSchema {
        TableBuilder::new("objects")
            .col("object_id", DataType::Int)
            .col("frame_id", DataType::Int)
            .col_null("mag", DataType::Float)
            .pk(&["object_id"])
            .fk("fk_objects_frame", &["frame_id"], "frames")
            .check("chk_mag", Expr::between(2, -5.0f64, 40.0f64))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_valid_schema() {
        let t = objects();
        assert_eq!(t.columns.len(), 3);
        assert_eq!(t.primary_key, vec![0]);
        assert_eq!(t.foreign_keys[0].columns, vec![1]);
        assert_eq!(t.column_index("mag"), Some(2));
        assert_eq!(t.column_index("nope"), None);
    }

    #[test]
    fn missing_pk_rejected() {
        let r = TableBuilder::new("t").col("a", DataType::Int).build();
        assert!(matches!(r, Err(DbError::InvalidSchema(_))));
    }

    #[test]
    fn duplicate_column_rejected() {
        let r = TableBuilder::new("t")
            .col("a", DataType::Int)
            .col("a", DataType::Int)
            .pk(&["a"])
            .build();
        assert!(matches!(r, Err(DbError::InvalidSchema(_))));
    }

    #[test]
    fn check_referencing_missing_column_rejected() {
        let r = TableBuilder::new("t")
            .col("a", DataType::Int)
            .pk(&["a"])
            .check("c", Expr::cmp(5, CmpOp::Gt, 0i64))
            .build();
        assert!(matches!(r, Err(DbError::InvalidSchema(_))));
    }

    #[test]
    fn catalog_requires_parents_first() {
        let mut cat = Catalog::new();
        let err = cat.add_table(objects());
        assert!(matches!(err, Err(DbError::InvalidSchema(_))));
        cat.add_table(frames()).unwrap();
        cat.add_table(objects()).unwrap();
        assert_eq!(cat.len(), 2);
    }

    #[test]
    fn fk_arity_and_type_checked() {
        let mut cat = Catalog::new();
        cat.add_table(frames()).unwrap();
        let bad = TableBuilder::new("bad")
            .col("id", DataType::Int)
            .col("fref", DataType::Float) // frames.frame_id is Int
            .pk(&["id"])
            .fk("fk_bad", &["fref"], "frames")
            .build()
            .unwrap();
        assert!(matches!(cat.add_table(bad), Err(DbError::InvalidSchema(_))));
    }

    #[test]
    fn topological_order_and_depths() {
        let mut cat = Catalog::new();
        cat.add_table(frames()).unwrap();
        cat.add_table(objects()).unwrap();
        let fingers = TableBuilder::new("fingers")
            .col("finger_id", DataType::Int)
            .col("object_id", DataType::Int)
            .pk(&["finger_id"])
            .fk("fk_fingers_object", &["object_id"], "objects")
            .build()
            .unwrap();
        cat.add_table(fingers).unwrap();
        let order = cat.topological_order();
        assert_eq!(order.len(), 3);
        assert_eq!(cat.fk_depths(), vec![0, 1, 2]);
    }

    #[test]
    fn swap_names_rebinds_and_rewrites_fks() {
        let mut cat = Catalog::new();
        cat.add_table(frames()).unwrap();
        cat.add_table(objects()).unwrap();
        // Shadow pair, defined after the live tables (as a campaign would).
        let shadow_frames = TableBuilder::new("frames__shadow")
            .col("frame_id", DataType::Int)
            .col("exposure", DataType::Float)
            .pk(&["frame_id"])
            .build()
            .unwrap();
        let shadow_objects = TableBuilder::new("objects__shadow")
            .col("object_id", DataType::Int)
            .col("frame_id", DataType::Int)
            .col_null("mag", DataType::Float)
            .pk(&["object_id"])
            .fk("fk_objects_frame", &["frame_id"], "frames__shadow")
            .build()
            .unwrap();
        let sf = cat.add_table(shadow_frames).unwrap();
        let so = cat.add_table(shadow_objects).unwrap();

        let ids = cat
            .swap_names(&[
                ("frames".into(), "frames__shadow".into()),
                ("objects".into(), "objects__shadow".into()),
            ])
            .unwrap();
        assert_eq!(ids, vec![(TableId(0), sf), (TableId(1), so)]);
        // The shadow physical tables now answer to the live names...
        assert_eq!(cat.table_id("frames"), Some(sf));
        assert_eq!(cat.table_id("objects"), Some(so));
        // ...and the demoted live tables to the shadow names.
        assert_eq!(cat.table_id("frames__shadow"), Some(TableId(0)));
        assert_eq!(cat.table_id("objects__shadow"), Some(TableId(1)));
        // Every FK still points at the same physical parent id.
        for (id, t) in cat.iter() {
            for fk in &t.foreign_keys {
                let p = cat.table_id(&fk.parent_table).unwrap();
                assert_ne!(p, id);
                // objects (either incarnation) must reference its own
                // frames incarnation: ids 1->0 and 3->2.
                assert_eq!(p.index() + 1, id.index(), "fk graph over ids moved");
            }
        }
        // Topological order remains valid even though the promoted parent
        // (id 2) was defined after the demoted child (id 1).
        let order = cat.topological_order();
        let pos = |id: TableId| order.iter().position(|x| *x == id).unwrap();
        assert!(pos(TableId(0)) < pos(TableId(1)));
        assert!(pos(sf) < pos(so));
        assert_eq!(cat.fk_depths(), vec![0, 1, 0, 1]);
    }

    #[test]
    fn swap_names_validates_before_mutating() {
        let mut cat = Catalog::new();
        cat.add_table(frames()).unwrap();
        cat.add_table(objects()).unwrap();
        assert!(cat
            .swap_names(&[("frames".into(), "frames".into())])
            .is_err());
        assert!(cat.swap_names(&[("frames".into(), "nope".into())]).is_err());
        assert!(cat
            .swap_names(&[
                ("frames".into(), "objects".into()),
                ("objects".into(), "frames".into()),
            ])
            .is_err());
        // Nothing mutated by the failed attempts.
        assert_eq!(cat.table_id("frames"), Some(TableId(0)));
        assert_eq!(cat.table_id("objects"), Some(TableId(1)));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut cat = Catalog::new();
        cat.add_table(frames()).unwrap();
        assert!(matches!(
            cat.add_table(frames()),
            Err(DbError::AlreadyExists(_))
        ));
    }

    #[test]
    fn row_width_hint_reasonable() {
        let t = frames();
        assert!(t.row_width_hint() >= 16);
    }
}
