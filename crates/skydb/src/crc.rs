//! CRC-32 (IEEE 802.3) — the at-rest integrity checksum.
//!
//! Every durable byte in the engine is framed by this checksum: heap rows
//! carry a 4-byte CRC prefix ([`crate::heap`]), WAL records carry a 4-byte
//! CRC trailer ([`crate::wal`]). The polynomial is the ubiquitous reflected
//! `0xEDB88320` (zlib/PNG/SATA), table-driven with a table built at compile
//! time so the hot paths stay allocation- and branch-light.
//!
//! No external crate: the whole implementation is ~20 lines and `const fn`.

/// 256-entry lookup table for the reflected IEEE polynomial, built at
/// compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 of `data` (IEEE, reflected, init/final-xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let data = b"skydb at-rest integrity".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut rotten = data.clone();
                rotten[byte] ^= 1 << bit;
                assert_ne!(crc32(&rotten), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
