//! SQL values, column types, ordering and wire encoding.

use std::cmp::Ordering;
use std::fmt;

use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

use crate::error::{DbError, DbResult};

/// A column's declared type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// 64-bit signed integer (covers Oracle NUMBER(p,0) uses in the model).
    Int,
    /// 64-bit IEEE float (Oracle BINARY_DOUBLE / FLOAT).
    Float,
    /// Variable-length string with a maximum length in characters.
    Text(u32),
    /// Microseconds since the Unix epoch (Oracle DATE/TIMESTAMP stand-in).
    Timestamp,
    /// Boolean flag.
    Bool,
}

impl DataType {
    /// An approximate on-disk width in bytes, used for row-size accounting
    /// and index-key costing. Floats are wider than ints, as in Oracle,
    /// where FLOAT is stored as a variable-length NUMBER (up to 22 bytes;
    /// we use a typical 16) — this is what makes the paper's "index on 3
    /// float attributes" so much costlier than its 1-integer index (Fig. 8).
    pub fn width_hint(self) -> usize {
        match self {
            DataType::Int | DataType::Timestamp => 8,
            DataType::Float => 16,
            DataType::Bool => 1,
            DataType::Text(n) => (n as usize).min(64),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => f.write_str("INT"),
            DataType::Float => f.write_str("FLOAT"),
            DataType::Text(n) => write!(f, "VARCHAR({n})"),
            DataType::Timestamp => f.write_str("TIMESTAMP"),
            DataType::Bool => f.write_str("BOOL"),
        }
    }
}

/// A single SQL value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Text(String),
    /// Microseconds since the Unix epoch.
    Timestamp(i64),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// `true` if this is SQL NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Check this value against a declared type. NULL matches every type
    /// (nullability is enforced separately by NOT NULL constraints).
    pub fn matches_type(&self, dtype: DataType) -> Result<(), String> {
        match (self, dtype) {
            (Value::Null, _) => Ok(()),
            (Value::Int(_), DataType::Int) => Ok(()),
            (Value::Float(_), DataType::Float) => Ok(()),
            (Value::Int(_), DataType::Float) => Ok(()), // widening allowed
            (Value::Text(s), DataType::Text(max)) => {
                if s.chars().count() <= max as usize {
                    Ok(())
                } else {
                    Err(format!(
                        "string of {} chars exceeds VARCHAR({max})",
                        s.chars().count()
                    ))
                }
            }
            (Value::Timestamp(_), DataType::Timestamp) => Ok(()),
            (Value::Bool(_), DataType::Bool) => Ok(()),
            (v, t) => Err(format!("value {v} does not match type {t}")),
        }
    }

    /// Numeric view (Int/Float/Timestamp/Bool as f64) for expressions.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Timestamp(t) => Some(*t as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view, if the value is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// String view, if the value is text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Total SQL-ish ordering: NULL sorts first; numbers compare numerically
    /// across Int/Float; floats use IEEE total order for NaN stability;
    /// distinct non-comparable types order by a fixed type rank so composite
    /// keys always have a total order.
    pub fn cmp_sql(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// Approximate in-memory footprint, for array-set memory accounting.
    pub fn footprint(&self) -> usize {
        match self {
            Value::Text(s) => std::mem::size_of::<Value>() + s.capacity(),
            _ => std::mem::size_of::<Value>(),
        }
    }

    /// Encode this value onto a byte buffer (wire + page format).
    pub fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Value::Null => buf.put_u8(0),
            Value::Int(i) => {
                buf.put_u8(1);
                buf.put_i64_le(*i);
            }
            Value::Float(f) => {
                buf.put_u8(2);
                buf.put_f64_le(*f);
            }
            Value::Text(s) => {
                buf.put_u8(3);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
            Value::Timestamp(t) => {
                buf.put_u8(4);
                buf.put_i64_le(*t);
            }
            Value::Bool(b) => {
                buf.put_u8(5);
                buf.put_u8(u8::from(*b));
            }
        }
    }

    /// Decode one value from a byte buffer.
    pub fn decode(buf: &mut impl Buf) -> DbResult<Value> {
        if buf.remaining() < 1 {
            return Err(DbError::Protocol("truncated value tag".into()));
        }
        match buf.get_u8() {
            0 => Ok(Value::Null),
            1 => {
                check_remaining(buf, 8)?;
                Ok(Value::Int(buf.get_i64_le()))
            }
            2 => {
                check_remaining(buf, 8)?;
                Ok(Value::Float(buf.get_f64_le()))
            }
            3 => {
                check_remaining(buf, 4)?;
                let len = buf.get_u32_le() as usize;
                check_remaining(buf, len)?;
                let mut bytes = vec![0u8; len];
                buf.copy_to_slice(&mut bytes);
                String::from_utf8(bytes)
                    .map(Value::Text)
                    .map_err(|_| DbError::Protocol("invalid utf8 in text value".into()))
            }
            4 => {
                check_remaining(buf, 8)?;
                Ok(Value::Timestamp(buf.get_i64_le()))
            }
            5 => {
                check_remaining(buf, 1)?;
                Ok(Value::Bool(buf.get_u8() != 0))
            }
            t => Err(DbError::Protocol(format!("unknown value tag {t}"))),
        }
    }

    /// Encoded size in bytes (matches [`Value::encode`]).
    pub fn encoded_len(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => 9,
            Value::Text(s) => 5 + s.len(),
            Value::Bool(_) => 2,
        }
    }
}

fn check_remaining(buf: &impl Buf, n: usize) -> DbResult<()> {
    if buf.remaining() < n {
        Err(DbError::Protocol(format!(
            "truncated value payload: need {n}, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 2,
        Value::Timestamp(_) => 3,
        Value::Text(_) => 4,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Timestamp(t) => write!(f, "@{t}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A row: one value per declared column, in declaration order.
pub type Row = Vec<Value>;

/// Encode a whole row (column count + values).
pub fn encode_row(row: &[Value], buf: &mut impl BufMut) {
    buf.put_u16_le(row.len() as u16);
    for v in row {
        v.encode(buf);
    }
}

/// Decode a whole row.
pub fn decode_row(buf: &mut impl Buf) -> DbResult<Row> {
    if buf.remaining() < 2 {
        return Err(DbError::Protocol("truncated row header".into()));
    }
    let n = buf.get_u16_le() as usize;
    // Each value needs at least its 1-byte tag; reject inflated counts
    // before allocating.
    if n > buf.remaining() {
        return Err(DbError::Protocol(format!(
            "row claims {n} columns but only {} bytes remain",
            buf.remaining()
        )));
    }
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(Value::decode(buf)?);
    }
    Ok(row)
}

/// Encoded size of a whole row.
pub fn row_encoded_len(row: &[Value]) -> usize {
    2 + row.iter().map(Value::encoded_len).sum::<usize>()
}

/// A composite index key: an ordered tuple of values with total ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct Key(pub Vec<Value>);

impl Key {
    /// Build a key by projecting `columns` out of `row`.
    pub fn project(row: &[Value], columns: &[usize]) -> Key {
        Key(columns.iter().map(|&c| row[c].clone()).collect())
    }

    /// `true` if any component is NULL (NULL keys skip unique enforcement,
    /// as in Oracle).
    pub fn has_null(&self) -> bool {
        self.0.iter().any(Value::is_null)
    }

    /// Approximate encoded width in bytes (drives B+-tree fanout).
    pub fn width(&self) -> usize {
        self.0.iter().map(Value::encoded_len).sum()
    }
}

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        let len = self.0.len().min(other.0.len());
        for i in 0..len {
            match self.0[i].cmp_sql(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        let row: Row = vec![
            Value::Null,
            Value::Int(-42),
            Value::Float(3.5),
            Value::Text("héllo".into()),
            Value::Timestamp(1_120_000_000_000_000),
            Value::Bool(true),
        ];
        let mut buf = bytes::BytesMut::new();
        encode_row(&row, &mut buf);
        assert_eq!(buf.len(), row_encoded_len(&row));
        let mut rd = buf.freeze();
        let back = decode_row(&mut rd).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = bytes::BytesMut::new();
        Value::Text("abcdef".into()).encode(&mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(0..cut);
            assert!(Value::decode(&mut partial).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn null_sorts_first_and_nan_is_ordered() {
        assert_eq!(Value::Null.cmp_sql(&Value::Int(i64::MIN)), Ordering::Less);
        let nan = Value::Float(f64::NAN);
        // total_cmp: NaN > +inf, but crucially the order is *total*.
        assert_eq!(nan.cmp_sql(&nan), Ordering::Equal);
        assert_eq!(
            Value::Float(1.0).cmp_sql(&Value::Float(f64::NAN)),
            Ordering::Less
        );
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(2).cmp_sql(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).cmp_sql(&Value::Int(3)), Ordering::Equal);
    }

    #[test]
    fn type_checking() {
        assert!(Value::Int(1).matches_type(DataType::Int).is_ok());
        assert!(Value::Int(1).matches_type(DataType::Float).is_ok());
        assert!(Value::Float(1.0).matches_type(DataType::Int).is_err());
        assert!(Value::Null.matches_type(DataType::Bool).is_ok());
        assert!(Value::Text("abc".into())
            .matches_type(DataType::Text(2))
            .is_err());
        assert!(Value::Text("ab".into())
            .matches_type(DataType::Text(2))
            .is_ok());
    }

    #[test]
    fn key_ordering_is_lexicographic() {
        let a = Key(vec![Value::Int(1), Value::Text("b".into())]);
        let b = Key(vec![Value::Int(1), Value::Text("c".into())]);
        let c = Key(vec![Value::Int(2)]);
        assert!(a < b);
        assert!(b < c);
        // Prefix is less than its extension.
        let p = Key(vec![Value::Int(1)]);
        assert!(p < a);
    }

    #[test]
    fn key_null_detection_and_projection() {
        let row: Row = vec![Value::Int(7), Value::Null, Value::Text("x".into())];
        let k = Key::project(&row, &[0, 2]);
        assert_eq!(k.0, vec![Value::Int(7), Value::Text("x".into())]);
        assert!(!k.has_null());
        assert!(Key::project(&row, &[1]).has_null());
    }

    #[test]
    fn widths_reflect_encoding() {
        assert_eq!(Value::Int(0).encoded_len(), 9);
        assert_eq!(Value::Text("abc".into()).encoded_len(), 8);
        let k = Key(vec![
            Value::Float(0.0),
            Value::Float(0.0),
            Value::Float(0.0),
        ]);
        assert_eq!(k.width(), 27);
    }
}
