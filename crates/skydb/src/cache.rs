//! The database block cache and its writer process.
//!
//! §4.5.5 ("Manage Memory Allocation"): *"allocating a smaller database data
//! cache actually improves the data-loading performance. Since a database
//! writer needs to scan the entire data cache when writing new data from
//! data cache to disk, the reduced data cache size minimizes the work that
//! the database writer has to do each time."*
//!
//! [`BufferPool`] reproduces that mechanism: the writer cycle scans the
//! **whole frame table** (cost proportional to the configured capacity, not
//! to the dirty count) before flushing dirty pages to the data device. The
//! pool also models residency: when more pages are resident than capacity,
//! the oldest are evicted (written out first if dirty), which is how a
//! too-small cache shows up as extra I/O in read-heavy phases.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::time::Duration;

use parking_lot::Mutex;

use skyobs::{CounterHandle, Registry};
use skysim::disk::{Access, DiskDevice};
use skysim::metrics::TimeCharge;
use skysim::time::{TimeScale, Waiter};

use crate::schema::TableId;

/// Key of a cached page.
pub type PageKey = (TableId, u32);

#[derive(Debug, Default)]
struct FrameMeta {
    dirty: bool,
}

#[derive(Debug)]
struct PoolState {
    frames: HashMap<PageKey, FrameMeta>,
    /// FIFO residency order (insert-only workload ⇒ FIFO ≈ LRU).
    order: VecDeque<PageKey>,
    dirty: usize,
}

/// The block cache shared by all tables of one engine.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    per_frame_scan: Duration,
    state: Mutex<PoolState>,
    waiter: Waiter,
    hits: CounterHandle,
    misses: CounterHandle,
    evictions: CounterHandle,
    writer_cycles: CounterHandle,
    frames_scanned: CounterHandle,
    pages_flushed: CounterHandle,
    scan_cpu: TimeCharge,
}

impl BufferPool {
    /// A pool holding up to `capacity` pages. `per_frame_scan` is the CPU
    /// cost the writer pays per frame examined during a cycle. Counters are
    /// registered in `obs` under `cache.*`.
    pub fn new(
        capacity: usize,
        per_frame_scan: Duration,
        scale: TimeScale,
        obs: &Registry,
    ) -> Self {
        assert!(capacity > 0, "cache needs at least one frame");
        BufferPool {
            capacity,
            per_frame_scan,
            state: Mutex::new(PoolState {
                frames: HashMap::with_capacity(capacity * 2),
                order: VecDeque::with_capacity(capacity * 2),
                dirty: 0,
            }),
            waiter: Waiter::new(scale),
            hits: obs.counter("cache.hits"),
            misses: obs.counter("cache.misses"),
            evictions: obs.counter("cache.evictions"),
            writer_cycles: obs.counter("cache.writer_cycles"),
            frames_scanned: obs.counter("cache.frames_scanned"),
            pages_flushed: obs.counter("cache.pages_flushed"),
            scan_cpu: TimeCharge::new(),
        }
    }

    /// Configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Register a write to `(table, page)`: the page becomes resident and
    /// dirty; over-capacity residency evicts the oldest pages (flushing
    /// them to `data_dev` if dirty).
    ///
    /// Modeled device waits happen *after* the pool lock is released, so
    /// concurrent sessions' cache bookkeeping never serializes behind a
    /// disk service time (devices model their own queueing).
    pub fn note_write(&self, key: PageKey, data_dev: &DiskDevice) {
        let dirty_evicted = {
            let mut st = self.state.lock();
            match st.frames.get_mut(&key) {
                Some(meta) => {
                    if !meta.dirty {
                        meta.dirty = true;
                        st.dirty += 1;
                    }
                    0
                }
                None => {
                    st.frames.insert(key, FrameMeta { dirty: true });
                    st.order.push_back(key);
                    st.dirty += 1;
                    self.evict_over_capacity(&mut st)
                }
            }
        };
        if dirty_evicted > 0 {
            data_dev.write_run(dirty_evicted, Access::Random);
        }
    }

    /// Register a read of `(table, page)`. Returns `true` on a cache hit;
    /// a miss charges one random page read to `data_dev` and makes the page
    /// resident (clean).
    pub fn note_read(&self, key: PageKey, data_dev: &DiskDevice) -> bool {
        let (hit, dirty_evicted) = {
            let mut st = self.state.lock();
            if let std::collections::hash_map::Entry::Vacant(e) = st.frames.entry(key) {
                self.misses.inc();
                e.insert(FrameMeta { dirty: false });
                st.order.push_back(key);
                (false, self.evict_over_capacity(&mut st))
            } else {
                self.hits.inc();
                (true, 0)
            }
        };
        if !hit {
            data_dev.read_page(Access::Random);
        }
        if dirty_evicted > 0 {
            data_dev.write_run(dirty_evicted, Access::Random);
        }
        hit
    }

    /// Evict down to capacity, returning how many *dirty* victims the
    /// caller must write out (device I/O happens outside the pool lock).
    fn evict_over_capacity(&self, st: &mut PoolState) -> u64 {
        let mut dirty_evicted = 0u64;
        while st.frames.len() > self.capacity {
            let Some(victim) = st.order.pop_front() else {
                break;
            };
            let Some(meta) = st.frames.remove(&victim) else {
                continue; // stale queue entry
            };
            self.evictions.inc();
            if meta.dirty {
                st.dirty -= 1;
                self.pages_flushed.inc();
                dirty_evicted += 1;
            }
        }
        dirty_evicted
    }

    /// One database-writer cycle: scan the **entire** frame table (the
    /// §4.5.5 cost: proportional to capacity), then flush all dirty pages
    /// as one sequential run. The scan wait and the flush I/O are paid by
    /// the calling thread but outside the pool lock.
    pub fn writer_cycle(&self, data_dev: &DiskDevice) {
        let flushed = {
            let mut st = self.state.lock();
            let mut n = 0u64;
            for meta in st.frames.values_mut() {
                if meta.dirty {
                    meta.dirty = false;
                    n += 1;
                }
            }
            st.dirty = 0;
            n
        };
        // The writer scans every frame slot, resident or not — that is
        // the cost §4.5.5 exploits by shrinking the cache.
        let scanned = self.capacity as u64;
        self.frames_scanned.add(scanned);
        let scan_cost = Duration::from_nanos(self.per_frame_scan.as_nanos() as u64 * scanned);
        self.scan_cpu.charge(scan_cost);
        self.waiter.wait(scan_cost);
        self.writer_cycles.inc();
        if flushed > 0 {
            self.pages_flushed.add(flushed);
            data_dev.write_run(flushed, Access::Sequential);
        }
    }

    /// Pages currently dirty.
    pub fn dirty_count(&self) -> usize {
        self.state.lock().dirty
    }

    /// Pages currently resident.
    pub fn resident_count(&self) -> usize {
        self.state.lock().frames.len()
    }

    /// Cache hits observed by [`BufferPool::note_read`].
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses observed by [`BufferPool::note_read`].
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Pages evicted for capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Writer cycles run.
    pub fn writer_cycles(&self) -> u64 {
        self.writer_cycles.get()
    }

    /// Frames examined by the writer across all cycles.
    pub fn frames_scanned(&self) -> u64 {
        self.frames_scanned.get()
    }

    /// Dirty pages flushed (by the writer or by eviction).
    pub fn pages_flushed(&self) -> u64 {
        self.pages_flushed.get()
    }

    /// Modeled CPU spent scanning frames.
    pub fn scan_cpu(&self) -> Duration {
        self.scan_cpu.duration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysim::disk::DiskModel;

    fn dev() -> DiskDevice {
        DiskDevice::new("data", DiskModel::raided_sata(), TimeScale::ZERO)
    }

    fn key(p: u32) -> PageKey {
        (TableId(0), p)
    }

    #[test]
    fn writes_dirty_and_writer_flushes() {
        let pool = BufferPool::new(
            100,
            Duration::from_nanos(10),
            TimeScale::ZERO,
            &Registry::new(),
        );
        let d = dev();
        for p in 0..10 {
            pool.note_write(key(p), &d);
        }
        assert_eq!(pool.dirty_count(), 10);
        pool.writer_cycle(&d);
        assert_eq!(pool.dirty_count(), 0);
        assert_eq!(pool.pages_flushed(), 10);
        assert_eq!(d.writes(), 10);
        // Re-dirtying a resident page counts once.
        pool.note_write(key(3), &d);
        pool.note_write(key(3), &d);
        assert_eq!(pool.dirty_count(), 1);
    }

    #[test]
    fn scan_cost_proportional_to_capacity_not_dirty() {
        let small = BufferPool::new(
            10,
            Duration::from_nanos(100),
            TimeScale::ZERO,
            &Registry::new(),
        );
        let large = BufferPool::new(
            10_000,
            Duration::from_nanos(100),
            TimeScale::ZERO,
            &Registry::new(),
        );
        let d = dev();
        small.note_write(key(0), &d);
        large.note_write(key(0), &d);
        small.writer_cycle(&d);
        large.writer_cycle(&d);
        assert_eq!(small.frames_scanned(), 10);
        assert_eq!(large.frames_scanned(), 10_000);
        assert!(large.scan_cpu() > small.scan_cpu() * 100);
    }

    #[test]
    fn capacity_eviction_flushes_dirty_victims() {
        let pool = BufferPool::new(4, Duration::ZERO, TimeScale::ZERO, &Registry::new());
        let d = dev();
        for p in 0..8 {
            pool.note_write(key(p), &d);
        }
        assert_eq!(pool.resident_count(), 4);
        assert_eq!(pool.evictions(), 4);
        assert_eq!(d.writes(), 4, "evicted dirty pages written out");
    }

    #[test]
    fn read_hits_and_misses() {
        let pool = BufferPool::new(10, Duration::ZERO, TimeScale::ZERO, &Registry::new());
        let d = dev();
        assert!(!pool.note_read(key(1), &d), "cold read is a miss");
        assert!(pool.note_read(key(1), &d), "second read hits");
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 1);
        assert_eq!(d.reads(), 1);
    }

    #[test]
    fn clean_evictions_do_not_write() {
        let pool = BufferPool::new(2, Duration::ZERO, TimeScale::ZERO, &Registry::new());
        let d = dev();
        for p in 0..5 {
            pool.note_read(key(p), &d); // resident clean
        }
        assert_eq!(pool.evictions(), 3);
        assert_eq!(d.writes(), 0);
    }
}
