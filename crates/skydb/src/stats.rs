//! Engine statistics: counters for everything the experiments measure.
//!
//! Since the telemetry refactor the fields are [`skyobs`] registry handles
//! registered under `engine.<field>`, so one registry snapshot covers the
//! engine alongside the server, fleet, and loader counters. The access
//! syntax (`stats().rows_inserted.inc()`) and the serialized
//! [`StatsSnapshot`] are unchanged.

use serde::Serialize;

use skyobs::{CounterHandle, Registry};

/// Live counters owned by the engine, backed by the engine's [`Registry`].
/// Snapshot with [`EngineStats::snapshot`].
#[derive(Debug)]
pub struct EngineStats {
    /// Rows successfully inserted.
    pub rows_inserted: CounterHandle,
    /// Rows rejected by a constraint or type error.
    pub rows_rejected: CounterHandle,
    /// Rows deleted by `delete_where`.
    pub rows_deleted: CounterHandle,
    /// Batch database calls served.
    pub batch_calls: CounterHandle,
    /// Singleton insert calls served.
    pub single_calls: CounterHandle,
    /// Commits performed.
    pub commits: CounterHandle,
    /// Rollbacks performed.
    pub rollbacks: CounterHandle,
    /// Primary-key violations.
    pub pk_violations: CounterHandle,
    /// Key collisions with another transaction's still-uncommitted rows,
    /// reported to the client as retryable write conflicts.
    pub write_conflicts: CounterHandle,
    /// Foreign-key violations.
    pub fk_violations: CounterHandle,
    /// Unique-constraint violations.
    pub unique_violations: CounterHandle,
    /// CHECK-constraint violations.
    pub check_violations: CounterHandle,
    /// NOT NULL violations.
    pub not_null_violations: CounterHandle,
    /// Type/arity errors.
    pub type_errors: CounterHandle,
    /// Index entries maintained (all indexes).
    pub index_entries: CounterHandle,
    /// Bind-array spills (batch payload exceeded the bind buffer).
    pub bind_spills: CounterHandle,
    /// Bytes spilled past the bind buffer.
    pub bind_spill_bytes: CounterHandle,
    /// Full-table-scan page visits (query path).
    pub scan_pages: CounterHandle,
    /// Shadow→live table name swaps (campaign promotions).
    pub table_swaps: CounterHandle,
    /// Stored rows whose CRC failed on a read path (each one surfaced as a
    /// `DataCorruption` error, never as row data).
    pub rot_detected: CounterHandle,
    /// Rows quarantined by the scrubber (de-indexed and removed from the
    /// heap so they can be re-derived from source).
    pub rows_quarantined: CounterHandle,
}

impl EngineStats {
    /// Counters registered in `obs` under `engine.<field>`.
    pub fn new(obs: &Registry) -> Self {
        EngineStats {
            rows_inserted: obs.counter("engine.rows_inserted"),
            rows_rejected: obs.counter("engine.rows_rejected"),
            rows_deleted: obs.counter("engine.rows_deleted"),
            batch_calls: obs.counter("engine.batch_calls"),
            single_calls: obs.counter("engine.single_calls"),
            commits: obs.counter("engine.commits"),
            rollbacks: obs.counter("engine.rollbacks"),
            pk_violations: obs.counter("engine.pk_violations"),
            write_conflicts: obs.counter("engine.write_conflicts"),
            fk_violations: obs.counter("engine.fk_violations"),
            unique_violations: obs.counter("engine.unique_violations"),
            check_violations: obs.counter("engine.check_violations"),
            not_null_violations: obs.counter("engine.not_null_violations"),
            type_errors: obs.counter("engine.type_errors"),
            index_entries: obs.counter("engine.index_entries"),
            bind_spills: obs.counter("engine.bind_spills"),
            bind_spill_bytes: obs.counter("engine.bind_spill_bytes"),
            scan_pages: obs.counter("engine.scan_pages"),
            table_swaps: obs.counter("engine.table_swaps"),
            rot_detected: obs.counter("engine.rot_detected"),
            rows_quarantined: obs.counter("engine.rows_quarantined"),
        }
    }
}

impl Default for EngineStats {
    /// Stats bound to a private throwaway registry (tests only; the engine
    /// always uses [`EngineStats::new`] with its own registry).
    fn default() -> Self {
        EngineStats::new(&Registry::new())
    }
}

/// A serializable point-in-time copy of [`EngineStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StatsSnapshot {
    /// Rows successfully inserted.
    pub rows_inserted: u64,
    /// Rows rejected by a constraint or type error.
    pub rows_rejected: u64,
    /// Rows deleted by `delete_where`.
    pub rows_deleted: u64,
    /// Batch database calls served.
    pub batch_calls: u64,
    /// Singleton insert calls served.
    pub single_calls: u64,
    /// Commits performed.
    pub commits: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Primary-key violations.
    pub pk_violations: u64,
    /// Retryable write conflicts (collision with an uncommitted row).
    pub write_conflicts: u64,
    /// Foreign-key violations.
    pub fk_violations: u64,
    /// Unique-constraint violations.
    pub unique_violations: u64,
    /// CHECK-constraint violations.
    pub check_violations: u64,
    /// NOT NULL violations.
    pub not_null_violations: u64,
    /// Type/arity errors.
    pub type_errors: u64,
    /// Index entries maintained.
    pub index_entries: u64,
    /// Bind-array spills.
    pub bind_spills: u64,
    /// Bytes spilled past the bind buffer.
    pub bind_spill_bytes: u64,
    /// Full-table-scan page visits.
    pub scan_pages: u64,
    /// Shadow→live table name swaps.
    pub table_swaps: u64,
    /// Stored rows whose CRC failed on a read path.
    pub rot_detected: u64,
    /// Rows quarantined by the scrubber.
    pub rows_quarantined: u64,
}

impl EngineStats {
    /// Copy all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            rows_inserted: self.rows_inserted.get(),
            rows_rejected: self.rows_rejected.get(),
            rows_deleted: self.rows_deleted.get(),
            batch_calls: self.batch_calls.get(),
            single_calls: self.single_calls.get(),
            commits: self.commits.get(),
            rollbacks: self.rollbacks.get(),
            pk_violations: self.pk_violations.get(),
            write_conflicts: self.write_conflicts.get(),
            fk_violations: self.fk_violations.get(),
            unique_violations: self.unique_violations.get(),
            check_violations: self.check_violations.get(),
            not_null_violations: self.not_null_violations.get(),
            type_errors: self.type_errors.get(),
            index_entries: self.index_entries.get(),
            bind_spills: self.bind_spills.get(),
            bind_spill_bytes: self.bind_spill_bytes.get(),
            scan_pages: self.scan_pages.get(),
            table_swaps: self.table_swaps.get(),
            rot_detected: self.rot_detected.get(),
            rows_quarantined: self.rows_quarantined.get(),
        }
    }
}

impl StatsSnapshot {
    /// Total database calls (batch + singleton).
    pub fn total_calls(&self) -> u64 {
        self.batch_calls + self.single_calls
    }

    /// Total constraint violations of all kinds.
    pub fn total_violations(&self) -> u64 {
        self.pk_violations
            + self.fk_violations
            + self.unique_violations
            + self.check_violations
            + self.not_null_violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let s = EngineStats::default();
        s.rows_inserted.add(10);
        s.pk_violations.add(2);
        s.fk_violations.inc();
        s.batch_calls.add(3);
        s.single_calls.add(4);
        let snap = s.snapshot();
        assert_eq!(snap.rows_inserted, 10);
        assert_eq!(snap.total_violations(), 3);
        assert_eq!(snap.total_calls(), 7);
    }

    #[test]
    fn snapshot_serializes() {
        let snap = StatsSnapshot {
            rows_inserted: 5,
            ..Default::default()
        };
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"rows_inserted\":5"));
    }
}
