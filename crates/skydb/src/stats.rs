//! Engine statistics: counters for everything the experiments measure.

use serde::Serialize;

use skysim::metrics::Counter;

/// Live counters owned by the engine. Snapshot with [`EngineStats::snapshot`].
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Rows successfully inserted.
    pub rows_inserted: Counter,
    /// Rows rejected by a constraint or type error.
    pub rows_rejected: Counter,
    /// Rows deleted by `delete_where`.
    pub rows_deleted: Counter,
    /// Batch database calls served.
    pub batch_calls: Counter,
    /// Singleton insert calls served.
    pub single_calls: Counter,
    /// Commits performed.
    pub commits: Counter,
    /// Rollbacks performed.
    pub rollbacks: Counter,
    /// Primary-key violations.
    pub pk_violations: Counter,
    /// Foreign-key violations.
    pub fk_violations: Counter,
    /// Unique-constraint violations.
    pub unique_violations: Counter,
    /// CHECK-constraint violations.
    pub check_violations: Counter,
    /// NOT NULL violations.
    pub not_null_violations: Counter,
    /// Type/arity errors.
    pub type_errors: Counter,
    /// Index entries maintained (all indexes).
    pub index_entries: Counter,
    /// Bind-array spills (batch payload exceeded the bind buffer).
    pub bind_spills: Counter,
    /// Bytes spilled past the bind buffer.
    pub bind_spill_bytes: Counter,
    /// Full-table-scan page visits (query path).
    pub scan_pages: Counter,
}

/// A serializable point-in-time copy of [`EngineStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StatsSnapshot {
    /// Rows successfully inserted.
    pub rows_inserted: u64,
    /// Rows rejected by a constraint or type error.
    pub rows_rejected: u64,
    /// Rows deleted by `delete_where`.
    pub rows_deleted: u64,
    /// Batch database calls served.
    pub batch_calls: u64,
    /// Singleton insert calls served.
    pub single_calls: u64,
    /// Commits performed.
    pub commits: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Primary-key violations.
    pub pk_violations: u64,
    /// Foreign-key violations.
    pub fk_violations: u64,
    /// Unique-constraint violations.
    pub unique_violations: u64,
    /// CHECK-constraint violations.
    pub check_violations: u64,
    /// NOT NULL violations.
    pub not_null_violations: u64,
    /// Type/arity errors.
    pub type_errors: u64,
    /// Index entries maintained.
    pub index_entries: u64,
    /// Bind-array spills.
    pub bind_spills: u64,
    /// Bytes spilled past the bind buffer.
    pub bind_spill_bytes: u64,
    /// Full-table-scan page visits.
    pub scan_pages: u64,
}

impl EngineStats {
    /// Copy all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            rows_inserted: self.rows_inserted.get(),
            rows_rejected: self.rows_rejected.get(),
            rows_deleted: self.rows_deleted.get(),
            batch_calls: self.batch_calls.get(),
            single_calls: self.single_calls.get(),
            commits: self.commits.get(),
            rollbacks: self.rollbacks.get(),
            pk_violations: self.pk_violations.get(),
            fk_violations: self.fk_violations.get(),
            unique_violations: self.unique_violations.get(),
            check_violations: self.check_violations.get(),
            not_null_violations: self.not_null_violations.get(),
            type_errors: self.type_errors.get(),
            index_entries: self.index_entries.get(),
            bind_spills: self.bind_spills.get(),
            bind_spill_bytes: self.bind_spill_bytes.get(),
            scan_pages: self.scan_pages.get(),
        }
    }
}

impl StatsSnapshot {
    /// Total database calls (batch + singleton).
    pub fn total_calls(&self) -> u64 {
        self.batch_calls + self.single_calls
    }

    /// Total constraint violations of all kinds.
    pub fn total_violations(&self) -> u64 {
        self.pk_violations
            + self.fk_violations
            + self.unique_violations
            + self.check_violations
            + self.not_null_violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let s = EngineStats::default();
        s.rows_inserted.add(10);
        s.pk_violations.add(2);
        s.fk_violations.inc();
        s.batch_calls.add(3);
        s.single_calls.add(4);
        let snap = s.snapshot();
        assert_eq!(snap.rows_inserted, 10);
        assert_eq!(snap.total_violations(), 3);
        assert_eq!(snap.total_calls(), 7);
    }

    #[test]
    fn snapshot_serializes() {
        let snap = StatsSnapshot {
            rows_inserted: 5,
            ..Default::default()
        };
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"rows_inserted\":5"));
    }
}
