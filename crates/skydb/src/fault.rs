//! The deterministic fault-plan engine.
//!
//! The paper's §3 makes "automatic recovery from errors" a basic
//! requirement of the loading framework; exercising that requirement needs
//! a richer failure source than the original every-Nth connection reset.
//! A [`FaultPlan`] decides, per client call, whether to inject one of six
//! fault kinds — connection reset, transient "server busy", a latency
//! spike, disk-full on the commit's WAL flush, a crash mid-flush (torn log
//! write), or per-batch payload corruption — each with an independently
//! configurable rate or schedule.
//!
//! Every decision is a **pure function of the plan's seed and the call's
//! per-class ordinal** (via [`SplitMix64`]), so one seed reproduces the
//! identical fault schedule regardless of which loader thread happens to
//! issue a given call: the *n*-th commit tears its flush on every run, the
//! *k*-th batch is corrupt on every run. That is what makes the chaos-soak
//! harness replayable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use skysim::rng::SplitMix64;

use crate::error::DbError;

/// The injectable fault kinds, in decision-priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Crash during the commit's log flush: a torn WAL write, then every
    /// later call fails with [`DbError::ServerDown`] until recovery.
    CrashOnFlush,
    /// The log device rejects the commit's WAL flush
    /// ([`DbError::DiskFull`]); the transaction stays open and retryable.
    DiskFull,
    /// The server detects a corrupted batch payload and rejects the whole
    /// call before applying any row ([`DbError::Corruption`]).
    Corruption,
    /// Connection reset ([`DbError::Protocol`]), the legacy fault.
    Reset,
    /// Transient overload ([`DbError::ServerBusy`]).
    Busy,
    /// A latency spike: the call stalls for the configured duration, and
    /// fails with [`DbError::Timeout`] if the session's call budget is
    /// shorter than the spike.
    Latency,
    /// A whole loader process dies mid-file (the Condor "job killed" case):
    /// it loads a truncated prefix, then vanishes without releasing its
    /// lease. Decided per file grant, injected by the fleet layer.
    LoaderKill,
    /// A loader freezes mid-file (a "zombie"): it stops heartbeating, its
    /// lease is reclaimed and the file reassigned, and then it wakes up and
    /// tries to flush stale work — which fencing must reject. Decided per
    /// file grant, injected by the fleet layer.
    LoaderStall,
    /// The campaign coordinator crashes at the shadow→live swap point,
    /// after the shadow season is fully loaded but around the atomic
    /// rename. Recovery must either complete the swap or roll it back from
    /// the persisted campaign manifest — never serve a torn catalog.
    /// Decided per swap attempt, injected by the campaign layer.
    SwapCrash,
    /// A burst in the live-mode arrival process: the next few inter-arrival
    /// gaps collapse, piling micro-batches onto the ingest path and
    /// stressing the freshness SLO. Decided per file arrival, injected by
    /// the live-ingest layer.
    ArrivalBurst,
    /// Silent media rot: a bit flips in *stored* state — a heap page or a
    /// durable WAL record — long after the write barrier completed. Unlike
    /// [`FaultKind::Corruption`] (a bad request payload, rejected before
    /// apply), the damage lands in committed data and is only caught by the
    /// at-rest CRCs: the scrubber quarantines rotted heap rows, and WAL
    /// replay stops at the first bad record. Decided per rot opportunity,
    /// injected by the chaos harness.
    BitRot,
    /// A whole shard engine dies mid-ingest: its server stops answering
    /// ([`crate::error::DbError::ServerDown`]) until the shard supervisor
    /// fences the zone's epoch and rebuilds a replacement from the durable
    /// log. Decided per shard-fault opportunity, injected by the
    /// shard-chaos driver.
    ShardCrash,
    /// A shard's heartbeat stops but the engine stays up — the
    /// split-brain shape. The supervisor must fence the zone before
    /// re-granting it, so flushes from the stalled generation are
    /// rejected rather than double-applied. Decided per shard-fault
    /// opportunity, injected by the shard-chaos driver.
    ShardStall,
}

/// Every fault kind, for report iteration.
pub const FAULT_KINDS: [FaultKind; 13] = [
    FaultKind::CrashOnFlush,
    FaultKind::DiskFull,
    FaultKind::Corruption,
    FaultKind::Reset,
    FaultKind::Busy,
    FaultKind::Latency,
    FaultKind::LoaderKill,
    FaultKind::LoaderStall,
    FaultKind::SwapCrash,
    FaultKind::ArrivalBurst,
    FaultKind::BitRot,
    FaultKind::ShardCrash,
    FaultKind::ShardStall,
];

impl FaultKind {
    /// Stable label for report maps.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::CrashOnFlush => "crash_on_flush",
            FaultKind::DiskFull => "disk_full",
            FaultKind::Corruption => "corruption",
            FaultKind::Reset => "reset",
            FaultKind::Busy => "busy",
            FaultKind::Latency => "latency",
            FaultKind::LoaderKill => "loader_kill",
            FaultKind::LoaderStall => "loader_stall",
            FaultKind::SwapCrash => "swap_crash",
            FaultKind::ArrivalBurst => "arrival_burst",
            FaultKind::BitRot => "bit_rot",
            FaultKind::ShardCrash => "shard_crash",
            FaultKind::ShardStall => "shard_stall",
        }
    }

    /// Dense index for counter arrays.
    pub fn index(self) -> usize {
        match self {
            FaultKind::CrashOnFlush => 0,
            FaultKind::DiskFull => 1,
            FaultKind::Corruption => 2,
            FaultKind::Reset => 3,
            FaultKind::Busy => 4,
            FaultKind::Latency => 5,
            FaultKind::LoaderKill => 6,
            FaultKind::LoaderStall => 7,
            FaultKind::SwapCrash => 8,
            FaultKind::ArrivalBurst => 9,
            FaultKind::BitRot => 10,
            FaultKind::ShardCrash => 11,
            FaultKind::ShardStall => 12,
        }
    }
}

/// Which class of server call a fault decision applies to. Class-specific
/// kinds (disk-full, crash-on-flush on commits; corruption on batches) use
/// per-class ordinals so their schedules are independent of how many calls
/// of other classes interleave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallClass {
    /// A single-row insert.
    Single,
    /// A batched insert.
    Batch,
    /// A commit.
    Commit,
    /// A rollback.
    Rollback,
    /// A read query (scan / point lookup / index range). Queries see only
    /// connection-level faults — reset, busy, latency — never the
    /// write-path kinds.
    Query,
}

/// Configuration of a fault plan: one seed plus per-kind rates/schedules.
/// All rates are per-applicable-call Bernoulli probabilities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlanConfig {
    /// Seed every schedule derives from.
    pub seed: u64,
    /// Legacy schedule: fail every `n`th call with a connection reset
    /// (0 = off). Kept exact for the `inject_call_faults` shim.
    pub reset_every: u64,
    /// Connection-reset probability per call.
    pub reset_rate: f64,
    /// Server-busy probability per call.
    pub busy_rate: f64,
    /// Latency-spike probability per call.
    pub latency_rate: f64,
    /// Modeled duration of one latency spike.
    pub latency_spike: Duration,
    /// Disk-full probability per commit call.
    pub disk_full_rate: f64,
    /// Batch-corruption probability per batch call.
    pub corruption_rate: f64,
    /// Crash (torn WAL write) on the `n`-th commit call, 1-based.
    pub crash_on_flush_at: Option<u64>,
    /// Loader-kill probability per file grant (fleet-level fault).
    pub loader_kill_rate: f64,
    /// Loader-stall (zombie) probability per file grant (fleet-level fault).
    pub loader_stall_rate: f64,
    /// Kill the loader holding the `n`-th file grant, 1-based.
    pub loader_kill_at: Option<u64>,
    /// Stall the loader holding the `n`-th file grant, 1-based.
    pub loader_stall_at: Option<u64>,
    /// Crash the campaign coordinator at the `n`-th shadow→live swap
    /// attempt, 1-based (campaign-level fault).
    pub swap_crash_at: Option<u64>,
    /// Arrival-burst probability per file arrival (live-ingest fault).
    pub arrival_burst_rate: f64,
    /// Burst on the `n`-th file arrival, 1-based.
    pub arrival_burst_at: Option<u64>,
    /// Bit-rot probability per rot opportunity (the chaos harness polls the
    /// plan between micro-batches; each poll is one opportunity).
    pub bit_rot_rate: f64,
    /// Rot on the `n`-th opportunity, 1-based.
    pub bit_rot_at: Option<u64>,
    /// Shard-crash probability per shard-fault opportunity (the shard
    /// chaos driver polls the plan on a timer; each poll is one
    /// opportunity).
    pub shard_crash_rate: f64,
    /// Crash a shard on the `n`-th opportunity, 1-based.
    pub shard_crash_at: Option<u64>,
    /// Shard-stall (heartbeat freeze) probability per opportunity.
    pub shard_stall_rate: f64,
    /// Stall a shard on the `n`-th opportunity, 1-based.
    pub shard_stall_at: Option<u64>,
}

impl Default for FaultPlanConfig {
    /// Everything off; a 20 ms modeled spike if latency is enabled.
    fn default() -> Self {
        FaultPlanConfig {
            seed: 0,
            reset_every: 0,
            reset_rate: 0.0,
            busy_rate: 0.0,
            latency_rate: 0.0,
            latency_spike: Duration::from_millis(20),
            disk_full_rate: 0.0,
            corruption_rate: 0.0,
            crash_on_flush_at: None,
            loader_kill_rate: 0.0,
            loader_stall_rate: 0.0,
            loader_kill_at: None,
            loader_stall_at: None,
            swap_crash_at: None,
            arrival_burst_rate: 0.0,
            arrival_burst_at: None,
            bit_rot_rate: 0.0,
            bit_rot_at: None,
            shard_crash_rate: 0.0,
            shard_crash_at: None,
            shard_stall_rate: 0.0,
            shard_stall_at: None,
        }
    }
}

impl FaultPlanConfig {
    /// A plan seeded with `seed` and everything off.
    pub fn new(seed: u64) -> Self {
        FaultPlanConfig {
            seed,
            ..FaultPlanConfig::default()
        }
    }

    /// Builder-style: connection-reset rate.
    pub fn with_resets(mut self, rate: f64) -> Self {
        self.reset_rate = rate;
        self
    }

    /// Builder-style: server-busy rate.
    pub fn with_busy(mut self, rate: f64) -> Self {
        self.busy_rate = rate;
        self
    }

    /// Builder-style: latency-spike rate and spike duration.
    pub fn with_latency(mut self, rate: f64, spike: Duration) -> Self {
        self.latency_rate = rate;
        self.latency_spike = spike;
        self
    }

    /// Builder-style: disk-full rate (per commit).
    pub fn with_disk_full(mut self, rate: f64) -> Self {
        self.disk_full_rate = rate;
        self
    }

    /// Builder-style: batch-corruption rate (per batch).
    pub fn with_corruption(mut self, rate: f64) -> Self {
        self.corruption_rate = rate;
        self
    }

    /// Builder-style: crash on the `n`-th commit (1-based).
    pub fn with_crash_on_flush(mut self, nth_commit: u64) -> Self {
        self.crash_on_flush_at = Some(nth_commit);
        self
    }

    /// Builder-style: loader-kill rate (per file grant).
    pub fn with_loader_kills(mut self, rate: f64) -> Self {
        self.loader_kill_rate = rate;
        self
    }

    /// Builder-style: loader-stall rate (per file grant).
    pub fn with_loader_stalls(mut self, rate: f64) -> Self {
        self.loader_stall_rate = rate;
        self
    }

    /// Builder-style: kill the loader holding the `n`-th grant (1-based).
    pub fn with_loader_kill_at(mut self, nth_grant: u64) -> Self {
        self.loader_kill_at = Some(nth_grant);
        self
    }

    /// Builder-style: stall the loader holding the `n`-th grant (1-based).
    pub fn with_loader_stall_at(mut self, nth_grant: u64) -> Self {
        self.loader_stall_at = Some(nth_grant);
        self
    }

    /// Builder-style: crash the coordinator at the `n`-th swap (1-based).
    pub fn with_swap_crash_at(mut self, nth_swap: u64) -> Self {
        self.swap_crash_at = Some(nth_swap);
        self
    }

    /// Builder-style: arrival-burst rate (per file arrival).
    pub fn with_arrival_bursts(mut self, rate: f64) -> Self {
        self.arrival_burst_rate = rate;
        self
    }

    /// Builder-style: burst on the `n`-th file arrival (1-based).
    pub fn with_arrival_burst_at(mut self, nth_arrival: u64) -> Self {
        self.arrival_burst_at = Some(nth_arrival);
        self
    }

    /// Builder-style: bit-rot rate (per rot opportunity).
    pub fn with_bit_rot(mut self, rate: f64) -> Self {
        self.bit_rot_rate = rate;
        self
    }

    /// Builder-style: rot on the `n`-th opportunity (1-based).
    pub fn with_bit_rot_at(mut self, nth_opportunity: u64) -> Self {
        self.bit_rot_at = Some(nth_opportunity);
        self
    }

    /// Builder-style: shard-crash rate (per shard-fault opportunity).
    pub fn with_shard_crashes(mut self, rate: f64) -> Self {
        self.shard_crash_rate = rate;
        self
    }

    /// Builder-style: crash a shard on the `n`-th opportunity (1-based).
    pub fn with_shard_crash_at(mut self, nth_opportunity: u64) -> Self {
        self.shard_crash_at = Some(nth_opportunity);
        self
    }

    /// Builder-style: shard-stall rate (per shard-fault opportunity).
    pub fn with_shard_stalls(mut self, rate: f64) -> Self {
        self.shard_stall_rate = rate;
        self
    }

    /// Builder-style: stall a shard on the `n`-th opportunity (1-based).
    pub fn with_shard_stall_at(mut self, nth_opportunity: u64) -> Self {
        self.shard_stall_at = Some(nth_opportunity);
        self
    }

    /// Validate rates.
    pub fn validate(&self) -> Result<(), String> {
        for (name, r) in [
            ("reset_rate", self.reset_rate),
            ("busy_rate", self.busy_rate),
            ("latency_rate", self.latency_rate),
            ("disk_full_rate", self.disk_full_rate),
            ("corruption_rate", self.corruption_rate),
            ("loader_kill_rate", self.loader_kill_rate),
            ("loader_stall_rate", self.loader_stall_rate),
            ("arrival_burst_rate", self.arrival_burst_rate),
            ("bit_rot_rate", self.bit_rot_rate),
            ("shard_crash_rate", self.shard_crash_rate),
            ("shard_stall_rate", self.shard_stall_rate),
        ] {
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("{name} must be in [0, 1], got {r}"));
            }
        }
        if self.crash_on_flush_at == Some(0) {
            return Err("crash_on_flush_at is 1-based; 0 never fires".into());
        }
        if self.loader_kill_at == Some(0) || self.loader_stall_at == Some(0) {
            return Err("loader_kill_at/loader_stall_at are 1-based; 0 never fires".into());
        }
        if self.swap_crash_at == Some(0) || self.arrival_burst_at == Some(0) {
            return Err("swap_crash_at/arrival_burst_at are 1-based; 0 never fires".into());
        }
        if self.bit_rot_at == Some(0) {
            return Err("bit_rot_at is 1-based; 0 never fires".into());
        }
        if self.shard_crash_at == Some(0) || self.shard_stall_at == Some(0) {
            return Err("shard_crash_at/shard_stall_at are 1-based; 0 never fires".into());
        }
        Ok(())
    }
}

/// What the plan decided for one call.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultDecision {
    /// No fault: dispatch normally.
    Proceed,
    /// Fail the call with this error before dispatch.
    Fail(FaultKind, DbError),
    /// Stall the call by this modeled duration (then dispatch, unless the
    /// session's call budget expires first).
    Delay(Duration),
    /// Tear the commit's WAL flush and crash the server.
    CrashFlush,
}

/// A live fault plan: configuration plus per-class call counters.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultPlanConfig,
    calls_seen: AtomicU64,
    batch_calls: AtomicU64,
    commit_calls: AtomicU64,
    grants: AtomicU64,
    swaps: AtomicU64,
    arrivals: AtomicU64,
    rot_events: AtomicU64,
    shard_events: AtomicU64,
}

impl FaultPlan {
    /// Build a plan from its configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (rates outside `[0, 1]`).
    pub fn new(cfg: FaultPlanConfig) -> Self {
        cfg.validate().expect("valid fault-plan config");
        FaultPlan {
            cfg,
            calls_seen: AtomicU64::new(0),
            batch_calls: AtomicU64::new(0),
            commit_calls: AtomicU64::new(0),
            grants: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            arrivals: AtomicU64::new(0),
            rot_events: AtomicU64::new(0),
            shard_events: AtomicU64::new(0),
        }
    }

    /// The legacy every-Nth connection-reset schedule, exactly as
    /// `Server::inject_call_faults` always behaved.
    pub fn every_nth(every: u64) -> Self {
        FaultPlan::new(FaultPlanConfig {
            reset_every: every,
            ..FaultPlanConfig::default()
        })
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultPlanConfig {
        &self.cfg
    }

    /// Calls this plan has adjudicated.
    pub fn calls_seen(&self) -> u64 {
        self.calls_seen.load(Ordering::Relaxed)
    }

    /// Seed-deterministic Bernoulli draw for (kind, per-class ordinal):
    /// pure, so the schedule is independent of thread interleaving.
    fn fires(seed: u64, kind: FaultKind, ordinal: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let salt = 0xA076_1D64_78BD_642F_u64.wrapping_mul(kind.index() as u64 + 1);
        let mut rng = SplitMix64::new(seed ^ salt.wrapping_add(ordinal));
        // Discard one output to decorrelate adjacent ordinals.
        rng.next_u64();
        rng.next_f64() < rate
    }

    /// Adjudicate one call. At most one fault fires per call; class-specific
    /// kinds take priority over connection-level kinds.
    pub fn decide(&self, class: CallClass) -> FaultDecision {
        let n = self.calls_seen.fetch_add(1, Ordering::Relaxed) + 1;
        let cfg = &self.cfg;
        match class {
            CallClass::Commit => {
                let c = self.commit_calls.fetch_add(1, Ordering::Relaxed) + 1;
                if cfg.crash_on_flush_at == Some(c) {
                    return FaultDecision::CrashFlush;
                }
                if Self::fires(cfg.seed, FaultKind::DiskFull, c, cfg.disk_full_rate) {
                    return FaultDecision::Fail(
                        FaultKind::DiskFull,
                        DbError::DiskFull("log device out of space (injected fault)".into()),
                    );
                }
            }
            CallClass::Batch => {
                let b = self.batch_calls.fetch_add(1, Ordering::Relaxed) + 1;
                if Self::fires(cfg.seed, FaultKind::Corruption, b, cfg.corruption_rate) {
                    return FaultDecision::Fail(
                        FaultKind::Corruption,
                        DbError::Corruption(
                            "batch payload checksum mismatch (injected fault); nothing applied"
                                .into(),
                        ),
                    );
                }
            }
            CallClass::Single | CallClass::Rollback | CallClass::Query => {}
        }
        if (cfg.reset_every != 0 && n.is_multiple_of(cfg.reset_every))
            || Self::fires(cfg.seed, FaultKind::Reset, n, cfg.reset_rate)
        {
            return FaultDecision::Fail(
                FaultKind::Reset,
                DbError::Protocol("connection reset by peer (injected fault)".into()),
            );
        }
        if Self::fires(cfg.seed, FaultKind::Busy, n, cfg.busy_rate) {
            return FaultDecision::Fail(
                FaultKind::Busy,
                DbError::ServerBusy("too many concurrent requests (injected fault)".into()),
            );
        }
        if Self::fires(cfg.seed, FaultKind::Latency, n, cfg.latency_rate) {
            return FaultDecision::Delay(cfg.latency_spike);
        }
        FaultDecision::Proceed
    }

    /// Adjudicate one file grant for the fleet layer: should the loader
    /// holding it die mid-file ([`FaultKind::LoaderKill`]) or freeze into a
    /// zombie ([`FaultKind::LoaderStall`])? Grant ordinals are 1-based and
    /// global across the plan, so — like every other schedule — the decision
    /// is a pure function of (seed, grant ordinal) and independent of which
    /// loader thread draws the grant. Kill takes priority over stall.
    pub fn decide_loader_fault(&self) -> Option<FaultKind> {
        let g = self.grants.fetch_add(1, Ordering::Relaxed) + 1;
        let cfg = &self.cfg;
        if cfg.loader_kill_at == Some(g)
            || Self::fires(cfg.seed, FaultKind::LoaderKill, g, cfg.loader_kill_rate)
        {
            return Some(FaultKind::LoaderKill);
        }
        if cfg.loader_stall_at == Some(g)
            || Self::fires(cfg.seed, FaultKind::LoaderStall, g, cfg.loader_stall_rate)
        {
            return Some(FaultKind::LoaderStall);
        }
        None
    }

    /// Adjudicate one shadow→live swap attempt for the campaign layer:
    /// should the coordinator crash at the swap point? Swap ordinals are
    /// 1-based and per-plan, so a `swap_crash_at: Some(1)` plan crashes the
    /// first attempt and lets the recovery retry through.
    pub fn decide_swap_fault(&self) -> Option<FaultKind> {
        let s = self.swaps.fetch_add(1, Ordering::Relaxed) + 1;
        if self.cfg.swap_crash_at == Some(s) {
            return Some(FaultKind::SwapCrash);
        }
        None
    }

    /// Adjudicate one file arrival for the live-ingest layer: should the
    /// arrival process burst here? Arrival ordinals are 1-based and pure
    /// functions of (seed, ordinal), so a seed reproduces the same burst
    /// pattern on every run.
    pub fn decide_arrival_fault(&self) -> Option<FaultKind> {
        let a = self.arrivals.fetch_add(1, Ordering::Relaxed) + 1;
        let cfg = &self.cfg;
        if cfg.arrival_burst_at == Some(a)
            || Self::fires(cfg.seed, FaultKind::ArrivalBurst, a, cfg.arrival_burst_rate)
        {
            return Some(FaultKind::ArrivalBurst);
        }
        None
    }

    /// Adjudicate one bit-rot opportunity for the chaos harness: should a
    /// stored bit flip here? Opportunity ordinals are 1-based and — like
    /// every other schedule — the decision is a pure function of
    /// (seed, ordinal), so a seed reproduces the same rot pattern on every
    /// run. The *site* of the rot (which table/row/byte, or which WAL
    /// offset) is derived by the harness from the same ordinal.
    pub fn decide_bit_rot_fault(&self) -> Option<FaultKind> {
        let r = self.rot_events.fetch_add(1, Ordering::Relaxed) + 1;
        let cfg = &self.cfg;
        if cfg.bit_rot_at == Some(r)
            || Self::fires(cfg.seed, FaultKind::BitRot, r, cfg.bit_rot_rate)
        {
            return Some(FaultKind::BitRot);
        }
        None
    }

    /// Adjudicate one shard-fault opportunity for the shard-chaos driver:
    /// should a whole shard engine crash ([`FaultKind::ShardCrash`]) or
    /// its heartbeat freeze ([`FaultKind::ShardStall`])? Opportunity
    /// ordinals are 1-based and pure functions of (seed, ordinal), so a
    /// seed reproduces the same kill schedule on every run; the *victim
    /// zone* is derived by the driver from the same ordinal. Crash takes
    /// priority over stall, mirroring the loader-fault precedence.
    pub fn decide_shard_fault(&self) -> Option<FaultKind> {
        let s = self.shard_events.fetch_add(1, Ordering::Relaxed) + 1;
        let cfg = &self.cfg;
        if cfg.shard_crash_at == Some(s)
            || Self::fires(cfg.seed, FaultKind::ShardCrash, s, cfg.shard_crash_rate)
        {
            return Some(FaultKind::ShardCrash);
        }
        if cfg.shard_stall_at == Some(s)
            || Self::fires(cfg.seed, FaultKind::ShardStall, s, cfg.shard_stall_rate)
        {
            return Some(FaultKind::ShardStall);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(plan: &FaultPlan, classes: &[CallClass]) -> Vec<FaultDecision> {
        classes.iter().map(|c| plan.decide(*c)).collect()
    }

    fn mixed_sequence(n: usize) -> Vec<CallClass> {
        (0..n)
            .map(|i| match i % 7 {
                0..=3 => CallClass::Batch,
                4 => CallClass::Single,
                5 => CallClass::Commit,
                _ => CallClass::Rollback,
            })
            .collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultPlanConfig::new(42)
            .with_resets(0.05)
            .with_busy(0.05)
            .with_latency(0.05, Duration::from_millis(5))
            .with_disk_full(0.2)
            .with_corruption(0.1)
            .with_crash_on_flush(40);
        let seq = mixed_sequence(500);
        let a = drive(&FaultPlan::new(cfg.clone()), &seq);
        let b = drive(&FaultPlan::new(cfg), &seq);
        assert_eq!(a, b, "identical seed must reproduce the schedule");
        assert!(
            a.iter().any(|d| !matches!(d, FaultDecision::Proceed)),
            "plan with nonzero rates should fire"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let mk = |seed| {
            FaultPlanConfig::new(seed)
                .with_resets(0.1)
                .with_busy(0.1)
                .with_corruption(0.1)
        };
        let seq = mixed_sequence(400);
        let a = drive(&FaultPlan::new(mk(1)), &seq);
        let b = drive(&FaultPlan::new(mk(2)), &seq);
        assert_ne!(a, b);
    }

    #[test]
    fn class_specific_ordinals_are_interleave_independent() {
        // The same batch ordinals must get the same corruption decisions no
        // matter how many commits/singles are interleaved between them.
        let cfg = FaultPlanConfig::new(7).with_corruption(0.3);
        let pure_batches = drive(&FaultPlan::new(cfg.clone()), &[CallClass::Batch; 60]);
        let interleaved: Vec<CallClass> = (0..180)
            .map(|i| {
                if i % 3 == 0 {
                    CallClass::Batch
                } else if i % 3 == 1 {
                    CallClass::Single
                } else {
                    CallClass::Commit
                }
            })
            .collect();
        let mixed = drive(&FaultPlan::new(cfg), &interleaved);
        let mixed_batch_decisions: Vec<&FaultDecision> = interleaved
            .iter()
            .zip(mixed.iter())
            .filter(|(c, _)| **c == CallClass::Batch)
            .map(|(_, d)| d)
            .collect();
        for (i, (pure, inter)) in pure_batches.iter().zip(mixed_batch_decisions).enumerate() {
            // Corruption decisions only (connection-level kinds use the
            // global ordinal, which legitimately differs).
            let pure_corrupt = matches!(pure, FaultDecision::Fail(FaultKind::Corruption, _));
            let inter_corrupt = matches!(inter, FaultDecision::Fail(FaultKind::Corruption, _));
            assert_eq!(pure_corrupt, inter_corrupt, "batch ordinal {i}");
        }
    }

    #[test]
    fn every_nth_matches_legacy_semantics() {
        let plan = FaultPlan::every_nth(3);
        let out = drive(&plan, &[CallClass::Single; 9]);
        for (i, d) in out.iter().enumerate() {
            let should_fail = (i + 1) % 3 == 0;
            match d {
                FaultDecision::Fail(FaultKind::Reset, DbError::Protocol(m)) => {
                    assert!(should_fail, "call {} failed unexpectedly", i + 1);
                    assert!(m.contains("connection reset by peer"));
                }
                FaultDecision::Proceed => assert!(!should_fail, "call {} should fail", i + 1),
                other => panic!("unexpected decision {other:?}"),
            }
        }
        assert_eq!(plan.calls_seen(), 9);
    }

    #[test]
    fn crash_fires_on_exact_commit_ordinal() {
        let cfg = FaultPlanConfig::new(9).with_crash_on_flush(3);
        let plan = FaultPlan::new(cfg);
        let seq = [
            CallClass::Batch,
            CallClass::Commit,
            CallClass::Batch,
            CallClass::Commit,
            CallClass::Commit,
        ];
        let out = drive(&plan, &seq);
        assert_eq!(out[4], FaultDecision::CrashFlush, "third commit crashes");
        assert!(out[..4].iter().all(|d| *d == FaultDecision::Proceed));
    }

    #[test]
    fn rates_roughly_honoured() {
        let cfg = FaultPlanConfig::new(123).with_busy(0.2);
        let plan = FaultPlan::new(cfg);
        let fired = drive(&plan, &[CallClass::Single; 5000])
            .iter()
            .filter(|d| matches!(d, FaultDecision::Fail(FaultKind::Busy, _)))
            .count();
        let rate = fired as f64 / 5000.0;
        assert!((rate - 0.2).abs() < 0.03, "busy rate {rate} far from 0.2");
    }

    #[test]
    fn loader_fault_schedule_is_seed_deterministic() {
        let cfg = FaultPlanConfig::new(55)
            .with_loader_kills(0.25)
            .with_loader_stalls(0.25);
        let draw = |cfg: FaultPlanConfig| {
            let plan = FaultPlan::new(cfg);
            (0..200)
                .map(|_| plan.decide_loader_fault())
                .collect::<Vec<_>>()
        };
        let a = draw(cfg.clone());
        let b = draw(cfg);
        assert_eq!(a, b, "identical seed must reproduce the grant schedule");
        assert!(a.contains(&Some(FaultKind::LoaderKill)));
        assert!(a.contains(&Some(FaultKind::LoaderStall)));
    }

    #[test]
    fn loader_fault_exact_ordinals_fire() {
        let plan = FaultPlan::new(
            FaultPlanConfig::new(1)
                .with_loader_kill_at(2)
                .with_loader_stall_at(3),
        );
        assert_eq!(plan.decide_loader_fault(), None);
        assert_eq!(plan.decide_loader_fault(), Some(FaultKind::LoaderKill));
        assert_eq!(plan.decide_loader_fault(), Some(FaultKind::LoaderStall));
        assert_eq!(plan.decide_loader_fault(), None);
    }

    #[test]
    fn swap_crash_fires_on_exact_swap_ordinal() {
        let plan = FaultPlan::new(FaultPlanConfig::new(5).with_swap_crash_at(2));
        assert_eq!(plan.decide_swap_fault(), None);
        assert_eq!(plan.decide_swap_fault(), Some(FaultKind::SwapCrash));
        assert_eq!(plan.decide_swap_fault(), None, "crash fires exactly once");
    }

    #[test]
    fn arrival_burst_schedule_is_seed_deterministic() {
        let cfg = FaultPlanConfig::new(88).with_arrival_bursts(0.3);
        let draw = |cfg: FaultPlanConfig| {
            let plan = FaultPlan::new(cfg);
            (0..200)
                .map(|_| plan.decide_arrival_fault())
                .collect::<Vec<_>>()
        };
        let a = draw(cfg.clone());
        let b = draw(cfg);
        assert_eq!(a, b, "identical seed must reproduce the burst schedule");
        assert!(a.contains(&Some(FaultKind::ArrivalBurst)));
        assert!(a.contains(&None));
    }

    #[test]
    fn arrival_burst_exact_ordinal_fires() {
        let plan = FaultPlan::new(FaultPlanConfig::new(1).with_arrival_burst_at(3));
        assert_eq!(plan.decide_arrival_fault(), None);
        assert_eq!(plan.decide_arrival_fault(), None);
        assert_eq!(plan.decide_arrival_fault(), Some(FaultKind::ArrivalBurst));
        assert_eq!(plan.decide_arrival_fault(), None);
    }

    #[test]
    fn bit_rot_schedule_is_seed_deterministic_and_exact() {
        let cfg = FaultPlanConfig::new(31).with_bit_rot(0.3);
        let draw = |cfg: FaultPlanConfig| {
            let plan = FaultPlan::new(cfg);
            (0..200)
                .map(|_| plan.decide_bit_rot_fault())
                .collect::<Vec<_>>()
        };
        let a = draw(cfg.clone());
        let b = draw(cfg);
        assert_eq!(a, b, "identical seed must reproduce the rot schedule");
        assert!(a.contains(&Some(FaultKind::BitRot)));
        assert!(a.contains(&None));

        let plan = FaultPlan::new(FaultPlanConfig::new(1).with_bit_rot_at(2));
        assert_eq!(plan.decide_bit_rot_fault(), None);
        assert_eq!(plan.decide_bit_rot_fault(), Some(FaultKind::BitRot));
        assert_eq!(plan.decide_bit_rot_fault(), None);
        assert!(FaultPlanConfig {
            bit_rot_at: Some(0),
            ..FaultPlanConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn shard_fault_schedule_is_seed_deterministic_and_exact() {
        let cfg = FaultPlanConfig::new(92)
            .with_shard_crashes(0.2)
            .with_shard_stalls(0.2);
        let draw = |cfg: FaultPlanConfig| {
            let plan = FaultPlan::new(cfg);
            (0..200)
                .map(|_| plan.decide_shard_fault())
                .collect::<Vec<_>>()
        };
        let a = draw(cfg.clone());
        let b = draw(cfg);
        assert_eq!(a, b, "identical seed must reproduce the kill schedule");
        assert!(a.contains(&Some(FaultKind::ShardCrash)));
        assert!(a.contains(&Some(FaultKind::ShardStall)));
        assert!(a.contains(&None));

        // Exact ordinals fire exactly once, crash beating stall on a tie.
        let plan = FaultPlan::new(
            FaultPlanConfig::new(1)
                .with_shard_crash_at(2)
                .with_shard_stall_at(2),
        );
        assert_eq!(plan.decide_shard_fault(), None);
        assert_eq!(plan.decide_shard_fault(), Some(FaultKind::ShardCrash));
        assert_eq!(plan.decide_shard_fault(), None);
        assert!(FaultPlanConfig {
            shard_stall_at: Some(0),
            ..FaultPlanConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn invalid_rates_rejected() {
        assert!(FaultPlanConfig::new(1).with_busy(1.5).validate().is_err());
        assert!(FaultPlanConfig {
            crash_on_flush_at: Some(0),
            ..FaultPlanConfig::default()
        }
        .validate()
        .is_err());
        FaultPlanConfig::new(1).validate().unwrap();
    }
}
