//! Binary wire protocol between loader clients and the database server.
//!
//! The paper's loaders speak JDBC over Gigabit Ethernet; every
//! `executeBatch` is one driver round trip carrying the bind arrays. Here
//! each request/response is really serialized to bytes and decoded on the
//! other side, so per-call marshaling cost is genuine work, and the payload
//! size (which the network model charges for) is the real encoded size.

use bytes::{Buf, BufMut, BytesMut};

use crate::error::{ConstraintKind, DbError, DbResult};
use crate::expr::{ArithOp, CmpOp, Expr};
use crate::schema::TableId;
use crate::value::{decode_row, encode_row, Row, Value};

/// A fencing token carried by mutating requests. `key` names a unit of
/// fenced work (the fleet layer uses one key per catalog file) and `epoch`
/// is the caller's lease generation; the server rejects any fenced call
/// whose epoch is below the minimum registered for that key, so a zombie
/// holder of a reclaimed lease cannot apply stale writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fence {
    /// Identifies the fenced unit of work.
    pub key: u64,
    /// The caller's lease epoch for that unit.
    pub epoch: u64,
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Insert a single row (the non-bulk baseline path).
    InsertSingle {
        /// Destination table.
        table: TableId,
        /// The row.
        row: Row,
        /// Optional fencing token.
        fence: Option<Fence>,
    },
    /// Insert a batch of rows with JDBC semantics.
    InsertBatch {
        /// Destination table.
        table: TableId,
        /// The rows, applied in order.
        rows: Vec<Row>,
        /// Optional fencing token.
        fence: Option<Fence>,
    },
    /// Commit the session's transaction.
    Commit {
        /// Optional fencing token.
        fence: Option<Fence>,
    },
    /// Roll back the session's transaction. Deliberately *not* fenced: a
    /// fenced-out zombie must still be able to discard its own stale work.
    Rollback,
    /// Read-committed scan with optional predicate pushdown. Reads are
    /// deliberately unfenced — a reader only ever sees committed data, so
    /// lease epochs are irrelevant to it.
    Scan {
        /// Table to scan.
        table: TableId,
        /// Optional filter evaluated server-side (pushdown).
        filter: Option<Expr>,
    },
    /// Read-committed scan addressed by table *name*, resolved on the
    /// server under the catalog read-guard that [`swap_tables`] excludes.
    /// This is the season-atomic read path: name resolution and the scan
    /// are one critical section, so a query can never resolve one season's
    /// binding and read another's rows — [`Request::Scan`] resolves the id
    /// client-side and cannot make that promise across a swap.
    ///
    /// [`swap_tables`]: crate::engine::Engine::swap_tables
    ScanNamed {
        /// Table name to resolve-and-scan atomically.
        table: String,
        /// Optional filter evaluated server-side (pushdown).
        filter: Option<Expr>,
    },
    /// Read-committed point lookup via the primary-key B+-tree.
    PkGet {
        /// Table to probe.
        table: TableId,
        /// Primary-key values, in key-column order.
        key: Row,
    },
    /// Read-committed range scan over a named secondary index
    /// (inclusive bounds) — the access path cone searches use.
    IndexRange {
        /// Table owning the index.
        table: TableId,
        /// Index name as given to `create_index`.
        index: String,
        /// Low key bound (inclusive).
        lo: Row,
        /// High key bound (inclusive).
        hi: Row,
    },
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success; `rows` rows were applied.
    Ok {
        /// Rows applied by the request.
        rows: u32,
    },
    /// Failure. For batches, `applied` rows persisted and the row at
    /// `offset` caused the error (JDBC semantics).
    Err {
        /// Rows applied before the failure.
        applied: u32,
        /// Failing row offset (`u32::MAX` when not row-specific).
        offset: u32,
        /// Error classification (see [`encode_error_kind`]).
        kind: u8,
        /// Human-readable server message.
        message: String,
    },
    /// Query success: the result rows plus the server-side modeled
    /// service time in microseconds (per-call CPU + per-row scan CPU),
    /// which the client adds to the network round trip for end-to-end
    /// modeled latency.
    Rows {
        /// Result rows.
        rows: Vec<Row>,
        /// Modeled server-side service time, microseconds.
        modeled_us: u64,
    },
}

const OP_INSERT_SINGLE: u8 = 1;
const OP_INSERT_BATCH: u8 = 2;
const OP_COMMIT: u8 = 3;
const OP_ROLLBACK: u8 = 4;
const OP_SCAN: u8 = 5;
const OP_PK_GET: u8 = 6;
const OP_INDEX_RANGE: u8 = 7;
const OP_SCAN_NAMED: u8 = 8;

const RESP_OK: u8 = 0;
const RESP_ERR: u8 = 1;
const RESP_ROWS: u8 = 2;

/// Maximum expression-tree depth accepted by the decoder: a hostile or
/// corrupt frame must not be able to recurse the server stack away.
const EXPR_MAX_DEPTH: usize = 64;

/// Map a [`DbError`] to a one-byte wire classification.
pub fn encode_error_kind(e: &DbError) -> u8 {
    match e.constraint_kind() {
        Some(ConstraintKind::PrimaryKey) => 1,
        Some(ConstraintKind::ForeignKey) => 2,
        Some(ConstraintKind::Unique) => 3,
        Some(ConstraintKind::Check) => 4,
        Some(ConstraintKind::NotNull) => 5,
        None => match e {
            DbError::TypeMismatch { .. } | DbError::ArityMismatch { .. } => 6,
            DbError::ServerBusy(_) => 7,
            DbError::DiskFull(_) => 8,
            DbError::Corruption(_) => 9,
            DbError::ServerDown(_) => 10,
            DbError::FencedOut(_) => 11,
            DbError::WriteConflict(_) => 12,
            // At-rest rot is a distinct kind from request-payload corruption
            // (9): resending cannot fix stored damage. Kind 9 keeps its
            // meaning for wire backcompat.
            DbError::DataCorruption(_) => 13,
            _ => 0,
        },
    }
}

/// Reconstruct a client-side [`DbError`] from a wire classification.
/// Drivers do exactly this: the client never sees the server's native error
/// object, only an error code + message.
pub fn decode_error_kind(kind: u8, message: String) -> DbError {
    let mk = |k: ConstraintKind| DbError::ConstraintViolation {
        kind: k,
        constraint: String::new(),
        table: String::new(),
        detail: message.clone(),
    };
    match kind {
        1 => mk(ConstraintKind::PrimaryKey),
        2 => mk(ConstraintKind::ForeignKey),
        3 => mk(ConstraintKind::Unique),
        4 => mk(ConstraintKind::Check),
        5 => mk(ConstraintKind::NotNull),
        6 => DbError::TypeMismatch {
            table: String::new(),
            column: String::new(),
            detail: message,
        },
        7 => DbError::ServerBusy(message),
        8 => DbError::DiskFull(message),
        9 => DbError::Corruption(message),
        10 => DbError::ServerDown(message),
        11 => DbError::FencedOut(message),
        12 => DbError::WriteConflict(message),
        13 => DbError::DataCorruption(message),
        _ => DbError::Protocol(message),
    }
}

/// Encode an optional fence: one presence byte, then key + epoch.
fn put_fence(buf: &mut BytesMut, fence: &Option<Fence>) {
    match fence {
        Some(f) => {
            buf.put_u8(1);
            buf.put_u64_le(f.key);
            buf.put_u64_le(f.epoch);
        }
        None => buf.put_u8(0),
    }
}

/// Decode an optional fence written by [`put_fence`].
fn get_fence(buf: &mut impl Buf) -> DbResult<Option<Fence>> {
    if buf.remaining() < 1 {
        return Err(DbError::Protocol("truncated fence marker".into()));
    }
    match buf.get_u8() {
        0 => Ok(None),
        1 => {
            if buf.remaining() < 16 {
                return Err(DbError::Protocol("truncated fence token".into()));
            }
            let key = buf.get_u64_le();
            let epoch = buf.get_u64_le();
            Ok(Some(Fence { key, epoch }))
        }
        b => Err(DbError::Protocol(format!("bad fence marker {b}"))),
    }
}

/// Encode a length-prefixed UTF-8 string.
fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Decode a string written by [`put_str`].
fn get_str(buf: &mut impl Buf) -> DbResult<String> {
    if buf.remaining() < 4 {
        return Err(DbError::Protocol("truncated string header".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DbError::Protocol("truncated string payload".into()));
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| DbError::Protocol("invalid utf8 in string".into()))
}

const EX_COLUMN: u8 = 1;
const EX_LITERAL: u8 = 2;
const EX_CMP: u8 = 3;
const EX_ARITH: u8 = 4;
const EX_AND: u8 = 5;
const EX_OR: u8 = 6;
const EX_NOT: u8 = 7;
const EX_IS_NULL: u8 = 8;
const EX_BETWEEN: u8 = 9;
const EX_IN: u8 = 10;

fn cmp_op_byte(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 1,
        CmpOp::Ne => 2,
        CmpOp::Lt => 3,
        CmpOp::Le => 4,
        CmpOp::Gt => 5,
        CmpOp::Ge => 6,
    }
}

fn cmp_op_from(b: u8) -> DbResult<CmpOp> {
    Ok(match b {
        1 => CmpOp::Eq,
        2 => CmpOp::Ne,
        3 => CmpOp::Lt,
        4 => CmpOp::Le,
        5 => CmpOp::Gt,
        6 => CmpOp::Ge,
        _ => return Err(DbError::Protocol(format!("bad cmp op {b}"))),
    })
}

fn arith_op_byte(op: ArithOp) -> u8 {
    match op {
        ArithOp::Add => 1,
        ArithOp::Sub => 2,
        ArithOp::Mul => 3,
        ArithOp::Div => 4,
    }
}

fn arith_op_from(b: u8) -> DbResult<ArithOp> {
    Ok(match b {
        1 => ArithOp::Add,
        2 => ArithOp::Sub,
        3 => ArithOp::Mul,
        4 => ArithOp::Div,
        _ => return Err(DbError::Protocol(format!("bad arith op {b}"))),
    })
}

/// Encode an expression tree (matches [`get_expr`]).
fn put_expr(buf: &mut BytesMut, e: &Expr) {
    match e {
        Expr::Column(c) => {
            buf.put_u8(EX_COLUMN);
            buf.put_u32_le(*c as u32);
        }
        Expr::Literal(v) => {
            buf.put_u8(EX_LITERAL);
            v.encode(buf);
        }
        Expr::Cmp(op, a, b) => {
            buf.put_u8(EX_CMP);
            buf.put_u8(cmp_op_byte(*op));
            put_expr(buf, a);
            put_expr(buf, b);
        }
        Expr::Arith(op, a, b) => {
            buf.put_u8(EX_ARITH);
            buf.put_u8(arith_op_byte(*op));
            put_expr(buf, a);
            put_expr(buf, b);
        }
        Expr::And(a, b) => {
            buf.put_u8(EX_AND);
            put_expr(buf, a);
            put_expr(buf, b);
        }
        Expr::Or(a, b) => {
            buf.put_u8(EX_OR);
            put_expr(buf, a);
            put_expr(buf, b);
        }
        Expr::Not(a) => {
            buf.put_u8(EX_NOT);
            put_expr(buf, a);
        }
        Expr::IsNull(a) => {
            buf.put_u8(EX_IS_NULL);
            put_expr(buf, a);
        }
        Expr::Between(x, lo, hi) => {
            buf.put_u8(EX_BETWEEN);
            put_expr(buf, x);
            put_expr(buf, lo);
            put_expr(buf, hi);
        }
        Expr::In(x, vals) => {
            buf.put_u8(EX_IN);
            put_expr(buf, x);
            buf.put_u32_le(vals.len() as u32);
            for v in vals {
                v.encode(buf);
            }
        }
    }
}

/// Decode an expression tree with a recursion-depth guard.
fn get_expr(buf: &mut impl Buf, depth: usize) -> DbResult<Expr> {
    if depth > EXPR_MAX_DEPTH {
        return Err(DbError::Protocol(format!(
            "expression deeper than {EXPR_MAX_DEPTH}"
        )));
    }
    if buf.remaining() < 1 {
        return Err(DbError::Protocol("truncated expression".into()));
    }
    match buf.get_u8() {
        EX_COLUMN => {
            if buf.remaining() < 4 {
                return Err(DbError::Protocol("truncated column ref".into()));
            }
            Ok(Expr::Column(buf.get_u32_le() as usize))
        }
        EX_LITERAL => Ok(Expr::Literal(Value::decode(buf)?)),
        EX_CMP => {
            if buf.remaining() < 1 {
                return Err(DbError::Protocol("truncated cmp op".into()));
            }
            let op = cmp_op_from(buf.get_u8())?;
            let a = get_expr(buf, depth + 1)?;
            let b = get_expr(buf, depth + 1)?;
            Ok(Expr::Cmp(op, Box::new(a), Box::new(b)))
        }
        EX_ARITH => {
            if buf.remaining() < 1 {
                return Err(DbError::Protocol("truncated arith op".into()));
            }
            let op = arith_op_from(buf.get_u8())?;
            let a = get_expr(buf, depth + 1)?;
            let b = get_expr(buf, depth + 1)?;
            Ok(Expr::Arith(op, Box::new(a), Box::new(b)))
        }
        EX_AND => {
            let a = get_expr(buf, depth + 1)?;
            let b = get_expr(buf, depth + 1)?;
            Ok(Expr::And(Box::new(a), Box::new(b)))
        }
        EX_OR => {
            let a = get_expr(buf, depth + 1)?;
            let b = get_expr(buf, depth + 1)?;
            Ok(Expr::Or(Box::new(a), Box::new(b)))
        }
        EX_NOT => Ok(Expr::Not(Box::new(get_expr(buf, depth + 1)?))),
        EX_IS_NULL => Ok(Expr::IsNull(Box::new(get_expr(buf, depth + 1)?))),
        EX_BETWEEN => {
            let x = get_expr(buf, depth + 1)?;
            let lo = get_expr(buf, depth + 1)?;
            let hi = get_expr(buf, depth + 1)?;
            Ok(Expr::Between(Box::new(x), Box::new(lo), Box::new(hi)))
        }
        EX_IN => {
            let x = get_expr(buf, depth + 1)?;
            if buf.remaining() < 4 {
                return Err(DbError::Protocol("truncated IN list".into()));
            }
            let n = buf.get_u32_le() as usize;
            // Each value is at least its 1-byte tag.
            if n > buf.remaining() {
                return Err(DbError::Protocol(format!(
                    "IN list claims {n} values but only {} bytes remain",
                    buf.remaining()
                )));
            }
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                vals.push(Value::decode(buf)?);
            }
            Ok(Expr::In(Box::new(x), vals))
        }
        t => Err(DbError::Protocol(format!("unknown expr tag {t}"))),
    }
}

impl Request {
    /// Encode onto a buffer. Returns the encoded length.
    pub fn encode(&self, buf: &mut BytesMut) -> usize {
        let start = buf.len();
        match self {
            Request::InsertSingle { table, row, fence } => {
                buf.put_u8(OP_INSERT_SINGLE);
                put_fence(buf, fence);
                buf.put_u32_le(table.0);
                encode_row(row, buf);
            }
            Request::InsertBatch { table, rows, fence } => {
                buf.put_u8(OP_INSERT_BATCH);
                put_fence(buf, fence);
                buf.put_u32_le(table.0);
                buf.put_u32_le(rows.len() as u32);
                for r in rows {
                    encode_row(r, buf);
                }
            }
            Request::Commit { fence } => {
                buf.put_u8(OP_COMMIT);
                put_fence(buf, fence);
            }
            Request::Rollback => buf.put_u8(OP_ROLLBACK),
            Request::Scan { table, filter } => {
                buf.put_u8(OP_SCAN);
                buf.put_u32_le(table.0);
                match filter {
                    Some(e) => {
                        buf.put_u8(1);
                        put_expr(buf, e);
                    }
                    None => buf.put_u8(0),
                }
            }
            Request::ScanNamed { table, filter } => {
                buf.put_u8(OP_SCAN_NAMED);
                put_str(buf, table);
                match filter {
                    Some(e) => {
                        buf.put_u8(1);
                        put_expr(buf, e);
                    }
                    None => buf.put_u8(0),
                }
            }
            Request::PkGet { table, key } => {
                buf.put_u8(OP_PK_GET);
                buf.put_u32_le(table.0);
                encode_row(key, buf);
            }
            Request::IndexRange {
                table,
                index,
                lo,
                hi,
            } => {
                buf.put_u8(OP_INDEX_RANGE);
                buf.put_u32_le(table.0);
                put_str(buf, index);
                encode_row(lo, buf);
                encode_row(hi, buf);
            }
        }
        buf.len() - start
    }

    /// Decode one request.
    pub fn decode(buf: &mut impl Buf) -> DbResult<Request> {
        if buf.remaining() < 1 {
            return Err(DbError::Protocol("empty request".into()));
        }
        match buf.get_u8() {
            OP_INSERT_SINGLE => {
                let fence = get_fence(buf)?;
                if buf.remaining() < 4 {
                    return Err(DbError::Protocol("truncated insert".into()));
                }
                let table = TableId(buf.get_u32_le());
                let row = decode_row(buf)?;
                Ok(Request::InsertSingle { table, row, fence })
            }
            OP_INSERT_BATCH => {
                let fence = get_fence(buf)?;
                if buf.remaining() < 8 {
                    return Err(DbError::Protocol("truncated batch header".into()));
                }
                let table = TableId(buf.get_u32_le());
                let n = buf.get_u32_le() as usize;
                // Never trust a length prefix beyond what the payload can
                // actually hold (each row needs at least its 2-byte count):
                // a corrupt frame must fail cleanly, not allocate gigabytes.
                if n > buf.remaining() / 2 {
                    return Err(DbError::Protocol(format!(
                        "batch claims {n} rows but only {} bytes remain",
                        buf.remaining()
                    )));
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(decode_row(buf)?);
                }
                Ok(Request::InsertBatch { table, rows, fence })
            }
            OP_COMMIT => {
                let fence = get_fence(buf)?;
                Ok(Request::Commit { fence })
            }
            OP_ROLLBACK => Ok(Request::Rollback),
            OP_SCAN => {
                if buf.remaining() < 5 {
                    return Err(DbError::Protocol("truncated scan header".into()));
                }
                let table = TableId(buf.get_u32_le());
                let filter = match buf.get_u8() {
                    0 => None,
                    1 => Some(get_expr(buf, 0)?),
                    b => return Err(DbError::Protocol(format!("bad filter marker {b}"))),
                };
                Ok(Request::Scan { table, filter })
            }
            OP_PK_GET => {
                if buf.remaining() < 4 {
                    return Err(DbError::Protocol("truncated pk-get header".into()));
                }
                let table = TableId(buf.get_u32_le());
                let key = decode_row(buf)?;
                Ok(Request::PkGet { table, key })
            }
            OP_SCAN_NAMED => {
                let table = get_str(buf)?;
                if buf.remaining() < 1 {
                    return Err(DbError::Protocol("truncated named-scan filter".into()));
                }
                let filter = match buf.get_u8() {
                    0 => None,
                    1 => Some(get_expr(buf, 0)?),
                    b => return Err(DbError::Protocol(format!("bad filter marker {b}"))),
                };
                Ok(Request::ScanNamed { table, filter })
            }
            OP_INDEX_RANGE => {
                if buf.remaining() < 4 {
                    return Err(DbError::Protocol("truncated index-range header".into()));
                }
                let table = TableId(buf.get_u32_le());
                let index = get_str(buf)?;
                let lo = decode_row(buf)?;
                let hi = decode_row(buf)?;
                Ok(Request::IndexRange {
                    table,
                    index,
                    lo,
                    hi,
                })
            }
            op => Err(DbError::Protocol(format!("unknown opcode {op}"))),
        }
    }

    /// The request's fencing token, if any. Queries are unfenced reads.
    pub fn fence(&self) -> Option<Fence> {
        match self {
            Request::InsertSingle { fence, .. }
            | Request::InsertBatch { fence, .. }
            | Request::Commit { fence } => *fence,
            Request::Rollback
            | Request::Scan { .. }
            | Request::ScanNamed { .. }
            | Request::PkGet { .. }
            | Request::IndexRange { .. } => None,
        }
    }
}

impl Response {
    /// Encode onto a buffer. Returns the encoded length.
    pub fn encode(&self, buf: &mut BytesMut) -> usize {
        let start = buf.len();
        match self {
            Response::Ok { rows } => {
                buf.put_u8(RESP_OK);
                buf.put_u32_le(*rows);
            }
            Response::Err {
                applied,
                offset,
                kind,
                message,
            } => {
                buf.put_u8(RESP_ERR);
                buf.put_u32_le(*applied);
                buf.put_u32_le(*offset);
                buf.put_u8(*kind);
                buf.put_u32_le(message.len() as u32);
                buf.put_slice(message.as_bytes());
            }
            Response::Rows { rows, modeled_us } => {
                buf.put_u8(RESP_ROWS);
                buf.put_u64_le(*modeled_us);
                buf.put_u32_le(rows.len() as u32);
                for r in rows {
                    encode_row(r, buf);
                }
            }
        }
        buf.len() - start
    }

    /// Decode one response.
    pub fn decode(buf: &mut impl Buf) -> DbResult<Response> {
        if buf.remaining() < 1 {
            return Err(DbError::Protocol("empty response".into()));
        }
        match buf.get_u8() {
            RESP_OK => {
                if buf.remaining() < 4 {
                    return Err(DbError::Protocol("truncated ok".into()));
                }
                Ok(Response::Ok {
                    rows: buf.get_u32_le(),
                })
            }
            RESP_ERR => {
                if buf.remaining() < 13 {
                    return Err(DbError::Protocol("truncated err".into()));
                }
                let applied = buf.get_u32_le();
                let offset = buf.get_u32_le();
                let kind = buf.get_u8();
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return Err(DbError::Protocol("truncated err message".into()));
                }
                let mut bytes = vec![0u8; len];
                buf.copy_to_slice(&mut bytes);
                let message = String::from_utf8(bytes)
                    .map_err(|_| DbError::Protocol("invalid utf8 in message".into()))?;
                Ok(Response::Err {
                    applied,
                    offset,
                    kind,
                    message,
                })
            }
            RESP_ROWS => {
                if buf.remaining() < 12 {
                    return Err(DbError::Protocol("truncated rows header".into()));
                }
                let modeled_us = buf.get_u64_le();
                let n = buf.get_u32_le() as usize;
                // Each row needs at least its 2-byte column count; reject
                // inflated counts before allocating.
                if n > buf.remaining() / 2 {
                    return Err(DbError::Protocol(format!(
                        "response claims {n} rows but only {} bytes remain",
                        buf.remaining()
                    )));
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(decode_row(buf)?);
                }
                Ok(Response::Rows { rows, modeled_us })
            }
            t => Err(DbError::Protocol(format!("unknown response tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn row(i: i64) -> Row {
        vec![
            Value::Int(i),
            Value::Float(i as f64),
            Value::Text("pq".into()),
        ]
    }

    #[test]
    fn request_roundtrips() {
        let fence = Some(Fence { key: 9, epoch: 3 });
        let reqs = vec![
            Request::InsertSingle {
                table: TableId(3),
                row: row(1),
                fence: None,
            },
            Request::InsertSingle {
                table: TableId(3),
                row: row(1),
                fence,
            },
            Request::InsertBatch {
                table: TableId(7),
                rows: (0..5).map(row).collect(),
                fence: None,
            },
            Request::InsertBatch {
                table: TableId(7),
                rows: (0..5).map(row).collect(),
                fence,
            },
            Request::Commit { fence: None },
            Request::Commit { fence },
            Request::Rollback,
        ];
        for r in reqs {
            let mut buf = BytesMut::new();
            let n = r.encode(&mut buf);
            assert_eq!(n, buf.len());
            let mut rd = buf.freeze();
            assert_eq!(Request::decode(&mut rd).unwrap(), r);
            assert_eq!(rd.remaining(), 0);
        }
    }

    #[test]
    fn query_requests_roundtrip() {
        let filter = Expr::cmp(2, CmpOp::Ge, 1.5f64)
            .and(Expr::between(3, -1.0f64, 1.0f64))
            .or(Expr::In(
                Box::new(Expr::Column(0)),
                vec![Value::Int(1), Value::Int(2), Value::Null],
            ));
        let reqs = vec![
            Request::Scan {
                table: TableId(4),
                filter: None,
            },
            Request::Scan {
                table: TableId(4),
                filter: Some(filter),
            },
            Request::Scan {
                table: TableId(0),
                filter: Some(Expr::IsNull(Box::new(Expr::Not(Box::new(Expr::Arith(
                    ArithOp::Div,
                    Box::new(Expr::Column(1)),
                    Box::new(Expr::Literal(Value::Float(2.0))),
                )))))),
            },
            Request::ScanNamed {
                table: "objects".into(),
                filter: None,
            },
            Request::ScanNamed {
                table: "objects__c7".into(),
                filter: Some(Expr::cmp(0, CmpOp::Eq, 3i64)),
            },
            Request::PkGet {
                table: TableId(9),
                key: vec![Value::Int(77)],
            },
            Request::IndexRange {
                table: TableId(2),
                index: "idx_objects_htmid".into(),
                lo: vec![Value::Int(100)],
                hi: vec![Value::Int(200)],
            },
        ];
        for r in reqs {
            let mut buf = BytesMut::new();
            let n = r.encode(&mut buf);
            assert_eq!(n, buf.len());
            let mut rd = buf.freeze();
            assert_eq!(Request::decode(&mut rd).unwrap(), r);
            assert_eq!(rd.remaining(), 0);
            assert_eq!(r.fence(), None, "queries are unfenced");
        }
    }

    #[test]
    fn pathologically_deep_expr_rejected() {
        let mut e = Expr::Column(0);
        for _ in 0..200 {
            e = Expr::Not(Box::new(e));
        }
        let mut buf = BytesMut::new();
        Request::Scan {
            table: TableId(0),
            filter: Some(e),
        }
        .encode(&mut buf);
        let mut rd = buf.freeze();
        assert!(Request::decode(&mut rd).is_err(), "depth guard must fire");
    }

    #[test]
    fn rows_response_roundtrips_and_rejects_inflated_count() {
        let resp = Response::Rows {
            rows: (0..3).map(row).collect(),
            modeled_us: 12_345,
        };
        let mut buf = BytesMut::new();
        resp.encode(&mut buf);
        let mut rd = buf.freeze();
        assert_eq!(Response::decode(&mut rd).unwrap(), resp);

        let mut evil = BytesMut::new();
        evil.put_u8(2); // RESP_ROWS
        evil.put_u64_le(0);
        evil.put_u32_le(u32::MAX);
        let mut rd = evil.freeze();
        assert!(Response::decode(&mut rd).is_err());
    }

    #[test]
    fn response_roundtrips() {
        let resps = vec![
            Response::Ok { rows: 40 },
            Response::Err {
                applied: 4,
                offset: 4,
                kind: 1,
                message: "ORA-00001: unique constraint violated".into(),
            },
        ];
        for r in resps {
            let mut buf = BytesMut::new();
            r.encode(&mut buf);
            let mut rd = buf.freeze();
            assert_eq!(Response::decode(&mut rd).unwrap(), r);
        }
    }

    #[test]
    fn error_kind_roundtrip() {
        let cases = vec![
            DbError::constraint(ConstraintKind::PrimaryKey, "p", "t", "d"),
            DbError::constraint(ConstraintKind::ForeignKey, "f", "t", "d"),
            DbError::constraint(ConstraintKind::Unique, "u", "t", "d"),
            DbError::constraint(ConstraintKind::Check, "c", "t", "d"),
            DbError::constraint(ConstraintKind::NotNull, "n", "t", "d"),
        ];
        for e in cases {
            let k = encode_error_kind(&e);
            let back = decode_error_kind(k, "m".into());
            assert_eq!(back.constraint_kind(), e.constraint_kind());
        }
        assert_eq!(
            encode_error_kind(&DbError::ArityMismatch {
                table: "t".into(),
                expected: 2,
                got: 1
            }),
            6
        );
        assert_eq!(encode_error_kind(&DbError::FencedOut("stale".into())), 11);
        assert!(matches!(
            decode_error_kind(11, "x".into()),
            DbError::FencedOut(_)
        ));
        // Request-payload corruption (9) and at-rest rot (13) stay distinct.
        assert_eq!(
            encode_error_kind(&DbError::Corruption("bad batch".into())),
            9
        );
        assert_eq!(
            encode_error_kind(&DbError::DataCorruption("rotted row".into())),
            13
        );
        assert!(matches!(
            decode_error_kind(9, "x".into()),
            DbError::Corruption(_)
        ));
        assert!(matches!(
            decode_error_kind(13, "x".into()),
            DbError::DataCorruption(_)
        ));
        assert!(matches!(
            decode_error_kind(0, "x".into()),
            DbError::Protocol(_)
        ));
    }

    #[test]
    fn truncated_frames_rejected() {
        let mut buf = BytesMut::new();
        Request::InsertBatch {
            table: TableId(1),
            rows: vec![row(1), row(2)],
            fence: Some(Fence { key: 1, epoch: 2 }),
        }
        .encode(&mut buf);
        let full = buf.freeze();
        // Cuts land mid-fence (1..18), mid-header and mid-row.
        for cut in [0, 1, 5, 9, 17, 20, full.len() - 1] {
            let mut partial = full.slice(0..cut);
            assert!(Request::decode(&mut partial).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn batch_encoding_size_scales_with_rows() {
        let mut one = BytesMut::new();
        Request::InsertBatch {
            table: TableId(0),
            rows: vec![row(1)],
            fence: None,
        }
        .encode(&mut one);
        let mut forty = BytesMut::new();
        Request::InsertBatch {
            table: TableId(0),
            rows: (0..40).map(row).collect(),
            fence: None,
        }
        .encode(&mut forty);
        assert!(forty.len() > one.len() * 25, "batch payload should scale");
        assert!(forty.len() < one.len() * 41, "no super-linear blowup");
    }
}
