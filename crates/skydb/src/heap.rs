//! Table heap storage: slotted pages of encoded rows.
//!
//! Loading is append-only (the paper's workload never updates in place), so
//! the heap is a sequence of fixed-capacity pages filled front to back.
//! Rows are stored *encoded* (the same byte format as the wire protocol and
//! the WAL), so inserting really pays serialization and page-copy costs.
//!
//! Deletion exists only as tombstoning, used to (a) undo the heap append
//! when a later constraint in the same insert fails and (b) roll back
//! uncommitted transactions and (c) quarantine rows whose stored bytes have
//! rotted.
//!
//! **At-rest integrity:** every stored row is framed as
//! `[4-byte LE CRC-32][encoded row]`. [`TableHeap::get`] and
//! [`TableHeap::scan`] strip the prefix; the verified accessors
//! ([`TableHeap::get_checked`], [`TableHeap::scan_checked`]) recompute the
//! CRC so a flipped bit in a stored page is *detected* rather than decoded
//! into plausible-looking garbage and served.

use crate::crc::crc32;
use crate::schema::TableId;

/// Usable payload bytes per heap page (8 KiB, the classic Oracle block).
pub const PAGE_BYTES: usize = 8192;

/// Bytes of CRC framing prepended to each stored row.
pub const ROW_CRC_BYTES: usize = 4;

/// Address of a row: packed `(page << 16) | slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(u64);

impl RowId {
    /// Construct from page and slot numbers.
    #[inline]
    pub fn new(page: u32, slot: u16) -> Self {
        RowId(((page as u64) << 16) | slot as u64)
    }

    /// The page number.
    #[inline]
    pub fn page(self) -> u32 {
        (self.0 >> 16) as u32
    }

    /// The slot within the page.
    #[inline]
    pub fn slot(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }

    /// The packed representation (B+-tree payload).
    #[inline]
    pub fn packed(self) -> u64 {
        self.0
    }

    /// Rebuild from a packed representation.
    #[inline]
    pub fn from_packed(p: u64) -> Self {
        RowId(p)
    }
}

/// One heap page: a slot directory of encoded rows.
#[derive(Debug, Default)]
pub struct Page {
    rows: Vec<Option<Box<[u8]>>>,
    bytes: usize,
}

impl Page {
    /// `true` if `len` more bytes fit on this page.
    #[inline]
    fn fits(&self, len: usize) -> bool {
        self.bytes + len <= PAGE_BYTES
    }

    /// Bytes currently used.
    pub fn bytes_used(&self) -> usize {
        self.bytes
    }

    /// Live (non-tombstoned) rows on this page.
    pub fn live_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.is_some()).count()
    }
}

/// The heap of one table.
#[derive(Debug)]
pub struct TableHeap {
    table: TableId,
    pages: Vec<Page>,
    live_rows: u64,
}

/// Outcome of a heap insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapInsert {
    /// Where the row landed.
    pub row_id: RowId,
    /// `true` if the insert allocated a fresh page.
    pub new_page: bool,
}

impl TableHeap {
    /// An empty heap for `table`.
    pub fn new(table: TableId) -> Self {
        TableHeap {
            table,
            pages: Vec::new(),
            live_rows: 0,
        }
    }

    /// The owning table.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// Append an encoded row, framing it with a CRC-32 prefix.
    ///
    /// # Panics
    /// Panics if a single framed row exceeds [`PAGE_BYTES`] — the catalog
    /// schema guarantees rows are far smaller.
    pub fn insert(&mut self, encoded: Box<[u8]>) -> HeapInsert {
        assert!(
            encoded.len() + ROW_CRC_BYTES <= PAGE_BYTES,
            "row of {} bytes exceeds page capacity",
            encoded.len()
        );
        let mut stored = Vec::with_capacity(ROW_CRC_BYTES + encoded.len());
        stored.extend_from_slice(&crc32(&encoded).to_le_bytes());
        stored.extend_from_slice(&encoded);
        let stored = stored.into_boxed_slice();
        let new_page = match self.pages.last() {
            Some(p) if p.fits(stored.len()) && p.rows.len() < u16::MAX as usize => false,
            _ => {
                self.pages.push(Page::default());
                true
            }
        };
        let page_no = (self.pages.len() - 1) as u32;
        let page = self.pages.last_mut().expect("page just ensured");
        let slot = page.rows.len() as u16;
        page.bytes += stored.len();
        page.rows.push(Some(stored));
        self.live_rows += 1;
        HeapInsert {
            row_id: RowId::new(page_no, slot),
            new_page,
        }
    }

    /// The raw stored slot (CRC prefix + payload), if live.
    #[inline]
    fn stored(&self, rid: RowId) -> Option<&[u8]> {
        self.pages
            .get(rid.page() as usize)?
            .rows
            .get(rid.slot() as usize)?
            .as_deref()
    }

    /// Fetch an encoded row, if present and not tombstoned. The CRC prefix
    /// is stripped but **not** verified — internal bookkeeping paths (undo,
    /// rollback) use this; anything that serves a reader must go through
    /// [`TableHeap::get_checked`].
    pub fn get(&self, rid: RowId) -> Option<&[u8]> {
        self.stored(rid).map(|r| &r[ROW_CRC_BYTES..])
    }

    /// Fetch an encoded row and verify its CRC. `None` — no such live row;
    /// `Some(Err(()))` — the row exists but its stored bytes fail the CRC
    /// (bit-rot); `Some(Ok(payload))` — intact.
    pub fn get_checked(&self, rid: RowId) -> Option<Result<&[u8], ()>> {
        self.stored(rid).map(Self::check)
    }

    #[inline]
    fn check(stored: &[u8]) -> Result<&[u8], ()> {
        let (prefix, payload) = stored.split_at(ROW_CRC_BYTES);
        let stored_crc = u32::from_le_bytes(prefix.try_into().expect("4-byte prefix"));
        if crc32(payload) == stored_crc {
            Ok(payload)
        } else {
            Err(())
        }
    }

    /// Tombstone a row, returning `true` if it existed.
    pub fn delete(&mut self, rid: RowId) -> bool {
        let Some(slot) = self
            .pages
            .get_mut(rid.page() as usize)
            .and_then(|p| p.rows.get_mut(rid.slot() as usize))
        else {
            return false;
        };
        if let Some(row) = slot.take() {
            self.pages[rid.page() as usize].bytes -= row.len();
            self.live_rows -= 1;
            true
        } else {
            false
        }
    }

    /// Iterate `(row_id, encoded_row)` over live rows in heap order (CRC
    /// prefix stripped, not verified — see [`TableHeap::scan_checked`]).
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &[u8])> + '_ {
        self.pages.iter().enumerate().flat_map(|(pno, page)| {
            page.rows.iter().enumerate().filter_map(move |(s, row)| {
                row.as_deref()
                    .map(|r| (RowId::new(pno as u32, s as u16), &r[ROW_CRC_BYTES..]))
            })
        })
    }

    /// Iterate live rows in heap order, verifying each row's CRC.
    /// `Err(())` marks a rotted row; the caller decides whether to error
    /// (committed reads) or quarantine (the scrubber).
    pub fn scan_checked(&self) -> impl Iterator<Item = (RowId, Result<&[u8], ()>)> + '_ {
        self.pages.iter().enumerate().flat_map(|(pno, page)| {
            page.rows.iter().enumerate().filter_map(move |(s, row)| {
                row.as_deref()
                    .map(|r| (RowId::new(pno as u32, s as u16), Self::check(r)))
            })
        })
    }

    /// Chaos hook: flip one bit of a stored row's *payload* in place — the
    /// modeled equivalent of media rot in a heap page. The CRC prefix is
    /// left intact, so the damage is detectable but the stored checksum no
    /// longer matches. Returns `false` if the row is absent or tombstoned.
    pub fn corrupt_row(&mut self, rid: RowId, byte: usize, bit: u8) -> bool {
        let Some(slot) = self
            .pages
            .get_mut(rid.page() as usize)
            .and_then(|p| p.rows.get_mut(rid.slot() as usize))
        else {
            return false;
        };
        let Some(row) = slot.as_deref_mut() else {
            return false;
        };
        let payload_len = row.len() - ROW_CRC_BYTES;
        if payload_len == 0 {
            return false;
        }
        row[ROW_CRC_BYTES + byte % payload_len] ^= 1 << (bit & 7);
        true
    }

    /// Number of live rows.
    pub fn row_count(&self) -> u64 {
        self.live_rows
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total bytes of live row data as stored (including the per-row CRC
    /// framing).
    pub fn bytes_used(&self) -> usize {
        self.pages.iter().map(|p| p.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(n: usize) -> Box<[u8]> {
        vec![0xAB; n].into_boxed_slice()
    }

    #[test]
    fn rowid_packing_roundtrips() {
        let r = RowId::new(123_456, 789);
        assert_eq!(r.page(), 123_456);
        assert_eq!(r.slot(), 789);
        assert_eq!(RowId::from_packed(r.packed()), r);
    }

    #[test]
    fn insert_fills_then_allocates() {
        let mut h = TableHeap::new(TableId(0));
        let first = h.insert(row(4000));
        assert!(first.new_page);
        let second = h.insert(row(4000));
        assert!(!second.new_page, "4000+4000 <= 8192 fits one page");
        let third = h.insert(row(4000));
        assert!(third.new_page, "8000+4000 overflows");
        assert_eq!(h.page_count(), 2);
        assert_eq!(h.row_count(), 3);
        assert_eq!(third.row_id.page(), 1);
        assert_eq!(third.row_id.slot(), 0);
    }

    #[test]
    fn get_and_delete() {
        let mut h = TableHeap::new(TableId(0));
        let a = h.insert(row(10)).row_id;
        let b = h.insert(row(20)).row_id;
        assert_eq!(h.get(a).unwrap().len(), 10);
        assert!(h.delete(a));
        assert!(!h.delete(a), "double delete");
        assert!(h.get(a).is_none());
        assert_eq!(h.get(b).unwrap().len(), 20);
        assert_eq!(h.row_count(), 1);
        assert!(!h.delete(RowId::new(99, 0)), "missing page");
    }

    #[test]
    fn scan_skips_tombstones_in_order() {
        let mut h = TableHeap::new(TableId(0));
        let ids: Vec<RowId> = (0..10).map(|i| h.insert(row(i + 1)).row_id).collect();
        h.delete(ids[3]);
        h.delete(ids[7]);
        let seen: Vec<usize> = h.scan().map(|(_, r)| r.len()).collect();
        assert_eq!(seen, vec![1, 2, 3, 5, 6, 7, 9, 10]);
    }

    #[test]
    fn bytes_used_tracks_deletes() {
        let mut h = TableHeap::new(TableId(0));
        let a = h.insert(row(100)).row_id;
        h.insert(row(50));
        // Stored size includes the 4-byte CRC frame per row.
        assert_eq!(h.bytes_used(), 150 + 2 * ROW_CRC_BYTES);
        h.delete(a);
        assert_eq!(h.bytes_used(), 50 + ROW_CRC_BYTES);
    }

    #[test]
    fn checked_reads_catch_every_payload_bit_flip() {
        let mut h = TableHeap::new(TableId(0));
        let rid = h.insert((*b"integrity").to_vec().into_boxed_slice()).row_id;
        assert_eq!(h.get_checked(rid), Some(Ok(&b"integrity"[..])));
        for byte in 0..9 {
            for bit in 0..8 {
                assert!(h.corrupt_row(rid, byte, bit));
                assert_eq!(h.get_checked(rid), Some(Err(())), "flip {byte}:{bit}");
                // Unverified accessors still serve the (wrong) bytes — that
                // is exactly why readers must use the checked paths.
                assert!(h.get(rid).is_some());
                assert!(h.corrupt_row(rid, byte, bit), "flip back");
            }
        }
        assert_eq!(h.get_checked(rid), Some(Ok(&b"integrity"[..])));
        let bad: Vec<RowId> = h
            .scan_checked()
            .filter_map(|(r, c)| c.is_err().then_some(r))
            .collect();
        assert!(bad.is_empty());
        h.corrupt_row(rid, 3, 2);
        let bad: Vec<RowId> = h
            .scan_checked()
            .filter_map(|(r, c)| c.is_err().then_some(r))
            .collect();
        assert_eq!(bad, vec![rid]);
    }

    #[test]
    fn corrupt_row_rejects_missing_and_tombstoned() {
        let mut h = TableHeap::new(TableId(0));
        let rid = h.insert(row(8)).row_id;
        assert!(!h.corrupt_row(RowId::new(5, 0), 0, 0));
        h.delete(rid);
        assert!(!h.corrupt_row(rid, 0, 0));
    }

    #[test]
    #[should_panic(expected = "exceeds page capacity")]
    fn oversized_row_panics() {
        let mut h = TableHeap::new(TableId(0));
        h.insert(row(PAGE_BYTES + 1));
    }
}
