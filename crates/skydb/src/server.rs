//! The database server and client sessions.
//!
//! One [`Server`] wraps an [`Engine`] behind:
//!
//! * a [`CpuGate`] with one permit per modeled processor (the Altix's 8) —
//!   every request executes while holding a permit and is charged the
//!   modeled SQL-layer CPU service time for its row count and index load;
//! * a shared [`NetworkModel`] — every client call really encodes its
//!   request, charges a round trip for the payload, and decodes the
//!   response on the way back.
//!
//! [`Session`] is the JDBC-connection equivalent: it owns (at most) one
//! open transaction, offers prepared inserts with `add_batch`/
//! `execute_batch` semantics, and reports batch failures as
//! `(applied, offset, error)` exactly as the paper's Fig. 3 recovery logic
//! requires.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::BytesMut;
use parking_lot::Mutex;

use skysim::cpu::CpuGate;
use skysim::net::NetworkModel;

use crate::config::DbConfig;
use crate::engine::{Engine, QueryOutcome};
use crate::error::{DbError, DbResult};
use crate::expr::Expr;
use crate::fault::{CallClass, FaultDecision, FaultKind, FaultPlan, FAULT_KINDS};
use crate::schema::TableId;
use crate::value::{Key, Row};
use crate::wal::TxnId;
use crate::wire::{decode_error_kind, encode_error_kind, Fence, Request, Response};

/// A database server: engine + CPU gate + network endpoint.
pub struct Server {
    engine: Engine,
    cpu: CpuGate,
    net: NetworkModel,
    /// Fault injection: the active plan, if any. Swappable at runtime so a
    /// chaos harness can change the weather mid-load.
    fault_plan: Mutex<Option<Arc<FaultPlan>>>,
    /// The observability registry server-level counters live in. Defaults
    /// to the engine's registry; a chaos coordinator passes its own so
    /// counts survive crash/recover server generations.
    obs: Arc<skyobs::Registry>,
    /// Fault counters by [`FaultKind::index`] — handles into `obs` under
    /// `server.faults.<kind>`. Registry-owned, so counts survive plan swaps
    /// (and, with a shared registry, server restarts).
    fault_counts: [skyobs::CounterHandle; FAULT_KINDS.len()],
    /// Set once a crash-on-flush fault fires; every later call on any
    /// session fails with [`DbError::ServerDown`] until the repository is
    /// recovered into a fresh server.
    crashed: AtomicBool,
    /// Fencing registry: minimum acceptable epoch per fence key. A fenced
    /// request whose epoch is below the floor is rejected before anything
    /// applies ([`DbError::FencedOut`]); the fleet supervisor raises the
    /// floor whenever it reclaims a lease and reassigns the work.
    fences: Mutex<BTreeMap<u64, u64>>,
}

/// Client-side handle to a prepared `INSERT INTO <table> VALUES (…)`.
#[derive(Debug, Clone, Copy)]
pub struct PreparedInsert {
    table: TableId,
    n_cols: usize,
}

impl PreparedInsert {
    /// The destination table.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// The column count the statement binds.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }
}

/// Outcome of `execute_batch`, mirroring JDBC's `BatchUpdateException`
/// information content.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// Rows applied (prefix before any error).
    pub applied: usize,
    /// Failing offset and reconstructed error, if the batch stopped.
    pub failed: Option<(usize, DbError)>,
}

impl BatchResult {
    /// `true` if the whole batch applied.
    pub fn is_complete(&self) -> bool {
        self.failed.is_none()
    }
}

/// A query result on the client: the rows plus the end-to-end modeled
/// latency (network round trip + server-side CPU service). The serving
/// tier's deadline/demotion decisions run on the modeled figure, so they
/// are deterministic at [`TimeScale::ZERO`].
///
/// [`TimeScale::ZERO`]: skysim::time::TimeScale::ZERO
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Result rows, visible at read-committed isolation.
    pub rows: Vec<Row>,
    /// End-to-end modeled latency of the call.
    pub modeled: Duration,
}

impl Server {
    /// Start a server with a fresh engine built from `cfg`. Server-level
    /// counters join the engine's registry, so one snapshot covers both.
    pub fn start(cfg: DbConfig) -> Arc<Server> {
        let obs = Arc::new(skyobs::Registry::new());
        Server::start_with_obs(cfg, obs)
    }

    /// Start a server with a fresh engine, registering both engine- and
    /// server-level counters in `obs`. A chaos coordinator passes a shared
    /// registry here so fault and loader counters accumulate across
    /// crash/recover generations.
    pub fn start_with_obs(cfg: DbConfig, obs: Arc<skyobs::Registry>) -> Arc<Server> {
        let cpu = CpuGate::new(cfg.cpus, cfg.scale);
        let net = NetworkModel::new(cfg.net_rtt, cfg.net_bytes_per_sec, cfg.scale);
        Server::assemble(Engine::with_obs(cfg, obs.clone()), cpu, net, obs)
    }

    /// Start a server around an existing engine (used by recovery tests).
    /// Server counters join the engine's registry.
    pub fn with_engine(engine: Engine) -> Arc<Server> {
        let obs = engine.obs().clone();
        Server::with_engine_and_obs(engine, obs)
    }

    /// Start a server around an existing engine with server-level counters
    /// in `obs` (the chaos coordinator's shared registry; the recovered
    /// engine keeps its own per-generation registry so replayed rows are
    /// not double-counted).
    pub fn with_engine_and_obs(engine: Engine, obs: Arc<skyobs::Registry>) -> Arc<Server> {
        let cfg = engine.config();
        let cpu = CpuGate::new(cfg.cpus, cfg.scale);
        let net = NetworkModel::new(cfg.net_rtt, cfg.net_bytes_per_sec, cfg.scale);
        Server::assemble(engine, cpu, net, obs)
    }

    fn assemble(
        engine: Engine,
        cpu: CpuGate,
        net: NetworkModel,
        obs: Arc<skyobs::Registry>,
    ) -> Arc<Server> {
        let fault_counts = std::array::from_fn(|i| {
            obs.counter(&format!("server.faults.{}", FAULT_KINDS[i].label()))
        });
        Arc::new(Server {
            engine,
            cpu,
            net,
            fault_plan: Mutex::new(None),
            obs,
            fault_counts,
            crashed: AtomicBool::new(false),
            fences: Mutex::new(BTreeMap::new()),
        })
    }

    /// The underlying engine (DDL, queries, stats).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The observability registry server-level counters live in.
    pub fn obs(&self) -> &Arc<skyobs::Registry> {
        &self.obs
    }

    /// Snapshot the registry after syncing the modeled-clock gauges
    /// (`model.network_us`, `model.server_cpu_us`, `model.disk_us`,
    /// `model.lock_wait_us`, `model.cache_scan_us`), so reports and the
    /// bench harness can read modeled costs from telemetry instead of
    /// probing each subsystem by hand.
    pub fn obs_snapshot(&self) -> skyobs::Snapshot {
        let e = &self.engine;
        self.obs
            .gauge("model.network_us")
            .set(self.net.modeled_time().as_micros() as u64);
        self.obs
            .gauge("model.server_cpu_us")
            .set((self.cpu.modeled_time() + e.row_service_time()).as_micros() as u64);
        self.obs
            .gauge("model.disk_us")
            .set(e.farm().modeled_time().as_micros() as u64);
        self.obs
            .gauge("model.lock_wait_us")
            .set(e.lock_wait_time().as_micros() as u64);
        self.obs
            .gauge("model.cache_scan_us")
            .set(e.cache().scan_cpu().as_micros() as u64);
        self.obs.snapshot()
    }

    /// The shared network model (for experiment accounting).
    pub fn network(&self) -> &NetworkModel {
        &self.net
    }

    /// The CPU gate (for experiment accounting).
    pub fn cpu(&self) -> &CpuGate {
        &self.cpu
    }

    /// Inject a connection fault on every `n`th client call (0 disables).
    /// Models the flaky links and driver timeouts a multi-hour production
    /// load inevitably hits; loaders must recover without losing or
    /// duplicating rows.
    ///
    /// Thin shim over [`Server::set_fault_plan`]: installs (or, for 0,
    /// removes) a [`FaultPlan::every_nth`] schedule. Call counting starts
    /// from the installation point, exactly as the original counter only
    /// advanced while a schedule was active.
    pub fn inject_call_faults(&self, every: u64) {
        let plan = (every != 0).then(|| FaultPlan::every_nth(every));
        self.set_fault_plan(plan);
    }

    /// Install (or, with `None`, remove) a fault plan. Per-kind fault
    /// counters are owned by the server and survive the swap.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *self.fault_plan.lock() = plan.map(Arc::new);
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.fault_plan.lock().clone()
    }

    /// Faults injected so far, across every kind and every plan this
    /// server has run under.
    pub fn faults_injected(&self) -> u64 {
        self.fault_counts.iter().map(|c| c.get()).sum()
    }

    /// Faults injected so far for one kind.
    pub fn fault_count(&self, kind: FaultKind) -> u64 {
        self.fault_counts[kind.index()].get()
    }

    /// Faults injected so far, labeled by kind (zero counts omitted) — the
    /// `server.faults.*` projection of the registry snapshot. With a shared
    /// chaos registry this is cumulative across server generations.
    pub fn faults_by_kind(&self) -> BTreeMap<String, u64> {
        self.obs.snapshot().with_prefix("server.faults.")
    }

    /// `true` once a crash-on-flush fault has taken the server down.
    /// Recover with [`Engine::durable_log`] + [`Engine::recover_from_log`]
    /// into a fresh [`Server::with_engine`].
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// Kill this server as an injected fault: every subsequent call fails
    /// with [`DbError::ServerDown`] until a replacement is rebuilt from
    /// the durable log. This is the shard-chaos hook — a `ShardCrash`
    /// schedule takes a whole zone's engine down the same way a
    /// crash-on-flush fault does, just from outside the call gate.
    pub fn crash(&self) {
        self.crashed.store(true, Ordering::Release);
    }

    fn note_fault(&self, kind: FaultKind) {
        self.fault_counts[kind.index()].inc();
    }

    /// Record a fault injected *outside* the server's own call gate — the
    /// fleet layer kills and stalls whole loaders, but their counts belong
    /// in the same per-kind ledger so [`Server::faults_by_kind`] stays the
    /// one place reports read from.
    pub fn note_injected_fault(&self, kind: FaultKind) {
        self.note_fault(kind);
    }

    /// Raise the fencing floor for `key` to at least `epoch` (max-merge;
    /// floors never move backwards). After this, any fenced call carrying
    /// an epoch `< epoch` for `key` is rejected with
    /// [`DbError::FencedOut`] before anything is applied.
    pub fn advance_fence(&self, key: u64, epoch: u64) {
        let mut fences = self.fences.lock();
        let floor = fences.entry(key).or_insert(0);
        *floor = (*floor).max(epoch);
    }

    /// The current fencing floor for `key` (0 if never fenced).
    pub fn fence_floor(&self, key: u64) -> u64 {
        self.fences.lock().get(&key).copied().unwrap_or(0)
    }

    /// Check one request's fencing token against the registry.
    fn check_fence(&self, fence: Option<Fence>) -> Result<(), Response> {
        let Some(f) = fence else { return Ok(()) };
        let floor = self.fence_floor(f.key);
        if f.epoch < floor {
            let e = DbError::FencedOut(format!(
                "epoch {} below fence floor {} for key {}; lease was reclaimed",
                f.epoch, floor, f.key
            ));
            return Err(Response::Err {
                applied: 0,
                offset: u32::MAX,
                kind: encode_error_kind(&e),
                message: e.to_string(),
            });
        }
        Ok(())
    }

    /// Adjudicate one client call against the crash flag and the active
    /// fault plan. Runs after the round trip is charged and before
    /// dispatch, so an injected failure reaches the server-side state
    /// machine exactly like a dropped connection: nothing was applied.
    fn fault_gate(&self, class: CallClass, txn: TxnId, budget: Option<Duration>) -> DbResult<()> {
        if self.is_crashed() {
            return Err(DbError::ServerDown(
                "server crashed (injected fault); recover from the durable log".into(),
            ));
        }
        let Some(plan) = self.fault_plan.lock().clone() else {
            return Ok(());
        };
        match plan.decide(class) {
            FaultDecision::Proceed => Ok(()),
            FaultDecision::Fail(kind, err) => {
                self.note_fault(kind);
                Err(err)
            }
            FaultDecision::Delay(spike) => {
                self.note_fault(FaultKind::Latency);
                self.net.delay(spike);
                match budget {
                    Some(b) if spike > b => Err(DbError::Timeout(format!(
                        "call exceeded its {}µs budget during a {}µs latency spike",
                        b.as_micros(),
                        spike.as_micros()
                    ))),
                    _ => Ok(()),
                }
            }
            FaultDecision::CrashFlush => {
                self.note_fault(FaultKind::CrashOnFlush);
                // Tear 1–8 bytes off the commit record (it encodes as 9
                // bytes), deterministically from the plan's call count, so
                // the record is always truncated mid-encode.
                let torn = 1 + (plan.calls_seen() % 8) as usize;
                let _ = self.engine.simulate_torn_commit_flush(txn, torn);
                self.crashed.store(true, Ordering::Release);
                Err(DbError::ServerDown(
                    "server crashed during commit flush (injected fault)".into(),
                ))
            }
        }
    }

    /// Open a client session.
    pub fn connect(self: &Arc<Self>) -> Session {
        Session {
            server: Arc::clone(self),
            txn: Mutex::new(None),
            closed: Mutex::new(false),
            call_timeout: Mutex::new(None),
            fence: Mutex::new(None),
        }
    }

    /// Server-side dispatch: decode, execute under a CPU permit, encode.
    fn dispatch(&self, txn: TxnId, request_bytes: &[u8]) -> DbResult<Vec<u8>> {
        let mut rd = request_bytes;
        let request = Request::decode(&mut rd)?;
        let cfg = self.engine.config();

        // Fencing runs before any work: a stale-epoch call must observe
        // "nothing applied" semantics, exactly like a rejected batch.
        if let Err(rejection) = self.check_fence(request.fence()) {
            let mut buf = BytesMut::with_capacity(64);
            rejection.encode(&mut buf);
            return Ok(buf.to_vec());
        }

        let response = match request {
            Request::InsertBatch { table, rows, .. } => {
                let service = self.call_service(request_bytes.len());
                let outcome = self
                    .cpu
                    .run(service, || self.engine.apply_batch(txn, table, &rows));
                match outcome.failed {
                    None => Response::Ok {
                        rows: outcome.applied as u32,
                    },
                    Some((offset, e)) => Response::Err {
                        applied: outcome.applied as u32,
                        offset: offset as u32,
                        kind: encode_error_kind(&e),
                        message: e.to_string(),
                    },
                }
            }
            Request::InsertSingle { table, row, .. } => {
                let service = self.call_service(request_bytes.len());
                let result = self
                    .cpu
                    .run(service, || self.engine.apply_single(txn, table, &row));
                match result {
                    Ok(_) => Response::Ok { rows: 1 },
                    Err(e) => Response::Err {
                        applied: 0,
                        offset: 0,
                        kind: encode_error_kind(&e),
                        message: e.to_string(),
                    },
                }
            }
            Request::Commit { .. } => {
                let service = cfg.per_call_cpu + cfg.commit_cpu;
                let result = self.cpu.run(service, || self.engine.commit(txn));
                match result {
                    Ok(()) => Response::Ok { rows: 0 },
                    Err(e) => Response::Err {
                        applied: 0,
                        offset: u32::MAX,
                        kind: encode_error_kind(&e),
                        message: e.to_string(),
                    },
                }
            }
            Request::Rollback => {
                let service = cfg.per_call_cpu + cfg.commit_cpu;
                let result = self.cpu.run(service, || self.engine.rollback(txn));
                match result {
                    Ok(()) => Response::Ok { rows: 0 },
                    Err(e) => Response::Err {
                        applied: 0,
                        offset: u32::MAX,
                        kind: encode_error_kind(&e),
                        message: e.to_string(),
                    },
                }
            }
            Request::Scan { table, filter } => {
                let base = self.call_service(request_bytes.len());
                let result = match self.table_checked(table) {
                    Ok(_) => self.cpu.run(base, || {
                        self.engine.scan_where_committed(table, filter.as_ref())
                    }),
                    Err(e) => Err(e),
                };
                self.query_response(base, result)
            }
            Request::ScanNamed { table, filter } => {
                let base = self.call_service(request_bytes.len());
                let result = self.cpu.run(base, || {
                    self.engine.scan_named_committed(&table, filter.as_ref())
                });
                self.query_response(base, result)
            }
            Request::PkGet { table, key } => {
                let base = self.call_service(request_bytes.len());
                let result = match self.table_checked(table) {
                    Ok(_) => self.cpu.run(base, || {
                        self.engine
                            .pk_get_committed(table, &Key(key))
                            .map(|row| QueryOutcome {
                                rows: row.into_iter().collect(),
                                examined: 1,
                            })
                    }),
                    Err(e) => Err(e),
                };
                self.query_response(base, result)
            }
            Request::IndexRange {
                table,
                index,
                lo,
                hi,
                ..
            } => {
                let base = self.call_service(request_bytes.len());
                let result = match self.table_checked(table) {
                    Ok(name) => self.cpu.run(base, || {
                        self.engine
                            .index_range_committed(&name, &index, &Key(lo), &Key(hi))
                    }),
                    Err(e) => Err(e),
                };
                self.query_response(base, result)
            }
        };

        let mut buf = BytesMut::with_capacity(64);
        response.encode(&mut buf);
        Ok(buf.to_vec())
    }

    /// Validate a wire-supplied table id, returning the table's name.
    fn table_checked(&self, table: TableId) -> DbResult<String> {
        self.engine
            .table_name(table)
            .ok_or_else(|| DbError::NoSuchTable(format!("table id {}", table.0)))
    }

    /// Finish a query: charge the per-row scan CPU tail, then encode either
    /// the rows (with the total modeled service) or the error.
    fn query_response(&self, base: Duration, result: DbResult<QueryOutcome>) -> Response {
        match result {
            Ok(q) => {
                let cfg = self.engine.config();
                let scan = Duration::from_nanos(cfg.scan_row_cpu.as_nanos() as u64 * q.examined);
                if scan > Duration::ZERO {
                    self.cpu.run(scan, || ());
                }
                Response::Rows {
                    rows: q.rows,
                    modeled_us: (base + scan).as_micros() as u64,
                }
            }
            Err(e) => Response::Err {
                applied: 0,
                offset: u32::MAX,
                kind: encode_error_kind(&e),
                message: e.to_string(),
            },
        }
    }

    /// Modeled per-call CPU (parse + dispatch + bind-array handling) paid
    /// at the processor gate. Per-row service is charged by the engine
    /// while the table insert slot is held.
    fn call_service(&self, payload_bytes: usize) -> Duration {
        let cfg = self.engine.config();
        let mut service = cfg.per_call_cpu;
        // Bind-array spill: payload beyond the server's bind buffer costs
        // extra CPU (workspace copy + temp management). This is the far
        // edge of the Fig. 5 batch-size optimum.
        if payload_bytes > cfg.bind_buffer_bytes {
            let spill = (payload_bytes - cfg.bind_buffer_bytes) as u64;
            self.engine.stats().bind_spills.inc();
            self.engine.stats().bind_spill_bytes.add(spill);
            service += Duration::from_nanos(cfg.spill_cpu_per_byte.as_nanos() as u64 * spill);
        }
        service
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("engine", &self.engine)
            .finish_non_exhaustive()
    }
}

/// One client connection with (at most) one open transaction.
pub struct Session {
    server: Arc<Server>,
    txn: Mutex<Option<TxnId>>,
    closed: Mutex<bool>,
    /// Per-call driver budget: a latency spike longer than this surfaces
    /// as [`DbError::Timeout`] (JDBC `setQueryTimeout` equivalent).
    call_timeout: Mutex<Option<Duration>>,
    /// Fencing token attached to every mutating call (inserts, commits —
    /// never rollbacks) while set. The fleet layer points this at the
    /// session's current lease so a reclaimed lease fences the session out.
    fence: Mutex<Option<Fence>>,
}

impl Session {
    /// Prepare an insert statement for `table`.
    pub fn prepare_insert(&self, table: &str) -> DbResult<PreparedInsert> {
        let tid = self.server.engine.table_id(table)?;
        let schema = self.server.engine.schema(tid);
        Ok(PreparedInsert {
            table: tid,
            n_cols: schema.columns.len(),
        })
    }

    fn ensure_txn(&self) -> DbResult<TxnId> {
        if *self.closed.lock() {
            return Err(DbError::SessionClosed);
        }
        let mut txn = self.txn.lock();
        if let Some(t) = *txn {
            return Ok(t);
        }
        let t = self.server.engine.begin();
        *txn = Some(t);
        Ok(t)
    }

    /// The session's open transaction, if any.
    pub fn current_txn(&self) -> Option<TxnId> {
        *self.txn.lock()
    }

    /// Set (or, with `None`, clear) the per-call timeout budget.
    pub fn set_call_timeout(&self, budget: Option<Duration>) {
        *self.call_timeout.lock() = budget;
    }

    /// Set (or, with `None`, clear) the fencing token attached to this
    /// session's mutating calls.
    pub fn set_fence(&self, fence: Option<Fence>) {
        *self.fence.lock() = fence;
    }

    /// The session's current fencing token, if any.
    pub fn fence(&self) -> Option<Fence> {
        *self.fence.lock()
    }

    fn call(&self, request: &Request) -> DbResult<Response> {
        let txn = self.ensure_txn()?;
        let class = match request {
            Request::InsertBatch { .. } => CallClass::Batch,
            Request::InsertSingle { .. } => CallClass::Single,
            Request::Commit { .. } => CallClass::Commit,
            Request::Rollback => CallClass::Rollback,
            // Reads go through `call_read`; routing one here still treats
            // it as a query for fault purposes.
            Request::Scan { .. }
            | Request::ScanNamed { .. }
            | Request::PkGet { .. }
            | Request::IndexRange { .. } => CallClass::Query,
        };
        // Client-side marshaling: real serialization work.
        let mut buf = BytesMut::with_capacity(256);
        let req_len = request.encode(&mut buf);
        // One round trip carries the request and the (small) response.
        self.server.net.round_trip(req_len + 16);
        self.server
            .fault_gate(class, txn, *self.call_timeout.lock())?;
        let resp_bytes = self.server.dispatch(txn, &buf)?;
        let mut rd = resp_bytes.as_slice();
        Response::decode(&mut rd)
    }

    /// Issue a read request. Reads never open (or touch) a transaction:
    /// the server executes them at read-committed isolation against
    /// whatever is committed at that instant, concurrently with any bulk
    /// load. They are also unfenced — see [`Request::fence`].
    fn call_read(&self, request: &Request) -> DbResult<QueryReply> {
        if *self.closed.lock() {
            return Err(DbError::SessionClosed);
        }
        let txn = self.current_txn().unwrap_or(TxnId(0));
        let mut buf = BytesMut::with_capacity(256);
        let req_len = request.encode(&mut buf);
        let rt = self.server.net.round_trip(req_len + 16);
        self.server
            .fault_gate(CallClass::Query, txn, *self.call_timeout.lock())?;
        let resp_bytes = self.server.dispatch(txn, &buf)?;
        let mut rd = resp_bytes.as_slice();
        match Response::decode(&mut rd)? {
            Response::Rows { rows, modeled_us } => Ok(QueryReply {
                rows,
                modeled: rt + Duration::from_micros(modeled_us),
            }),
            Response::Err { kind, message, .. } => Err(decode_error_kind(kind, message)),
            Response::Ok { .. } => Err(DbError::Protocol("unexpected ok for query".into())),
        }
    }

    /// Read-committed scan of `table` with an optional server-side filter
    /// (predicate pushdown: the expression travels the wire and is
    /// evaluated inside the engine).
    pub fn query_scan(&self, table: &str, filter: Option<Expr>) -> DbResult<QueryReply> {
        let tid = self.server.engine.table_id(table)?;
        self.call_read(&Request::Scan { table: tid, filter })
    }

    /// Season-atomic read-committed scan: the table name travels the wire
    /// and the server resolves it *inside* the same catalog read-guard
    /// the scan runs under, so a concurrent [`Engine::swap_tables`] can
    /// never slip between resolution and execution. Use this (as the
    /// serve tier does) when shadow-swap campaigns may promote tables
    /// mid-query.
    ///
    /// [`Engine::swap_tables`]: crate::engine::Engine::swap_tables
    pub fn query_scan_named(&self, table: &str, filter: Option<Expr>) -> DbResult<QueryReply> {
        self.call_read(&Request::ScanNamed {
            table: table.into(),
            filter,
        })
    }

    /// Read-committed point lookup by primary key. `key` carries the
    /// primary-key values in key-column order; the reply holds zero or one
    /// rows.
    pub fn query_pk(&self, table: &str, key: Row) -> DbResult<QueryReply> {
        let tid = self.server.engine.table_id(table)?;
        self.call_read(&Request::PkGet { table: tid, key })
    }

    /// Read-committed inclusive range scan over a named secondary index —
    /// the access path cone searches use for `htmid` covers.
    pub fn query_index_range(
        &self,
        table: &str,
        index: &str,
        lo: Row,
        hi: Row,
    ) -> DbResult<QueryReply> {
        let tid = self.server.engine.table_id(table)?;
        self.call_read(&Request::IndexRange {
            table: tid,
            index: index.to_owned(),
            lo,
            hi,
        })
    }

    /// Execute a single-row insert (the non-bulk path).
    pub fn execute(&self, stmt: &PreparedInsert, row: Row) -> DbResult<()> {
        self.check_arity(stmt, &row)?;
        match self.call(&Request::InsertSingle {
            table: stmt.table,
            row,
            fence: self.fence(),
        })? {
            Response::Ok { .. } => Ok(()),
            Response::Err { kind, message, .. } => Err(decode_error_kind(kind, message)),
            Response::Rows { .. } => Err(DbError::Protocol("rows response to insert".into())),
        }
    }

    /// Execute a batch insert with JDBC semantics.
    pub fn execute_batch(&self, stmt: &PreparedInsert, rows: &[Row]) -> DbResult<BatchResult> {
        for row in rows {
            self.check_arity(stmt, row)?;
        }
        match self.call(&Request::InsertBatch {
            table: stmt.table,
            rows: rows.to_vec(),
            fence: self.fence(),
        })? {
            Response::Ok { rows } => Ok(BatchResult {
                applied: rows as usize,
                failed: None,
            }),
            Response::Err {
                applied,
                offset,
                kind,
                message,
            } => {
                let e = decode_error_kind(kind, message);
                if matches!(e, DbError::FencedOut(_)) {
                    // A fenced-out batch is a call-level rejection (nothing
                    // applied), not a bad row the caller should skip past.
                    return Err(e);
                }
                Ok(BatchResult {
                    applied: applied as usize,
                    failed: Some((offset as usize, e)),
                })
            }
            Response::Rows { .. } => Err(DbError::Protocol("rows response to batch".into())),
        }
    }

    fn check_arity(&self, stmt: &PreparedInsert, row: &[crate::value::Value]) -> DbResult<()> {
        if row.len() != stmt.n_cols {
            let schema = self.server.engine.schema(stmt.table);
            return Err(DbError::ArityMismatch {
                table: schema.name.clone(),
                expected: stmt.n_cols,
                got: row.len(),
            });
        }
        Ok(())
    }

    /// Commit the open transaction (no-op without one).
    pub fn commit(&self) -> DbResult<()> {
        let had_txn = self.txn.lock().is_some();
        if !had_txn {
            return Ok(());
        }
        let resp = self.call(&Request::Commit {
            fence: self.fence(),
        })?;
        match resp {
            Response::Ok { .. } => {
                *self.txn.lock() = None;
                Ok(())
            }
            Response::Err { kind, message, .. } => {
                let e = decode_error_kind(kind, message);
                // A fenced-out commit was rejected before the server
                // touched the transaction: keep it open client-side so the
                // (unfenced) rollback can still discard the stale work.
                if !matches!(e, DbError::FencedOut(_)) {
                    *self.txn.lock() = None;
                }
                Err(e)
            }
            Response::Rows { .. } => Err(DbError::Protocol("rows response to commit".into())),
        }
    }

    /// Roll back the open transaction (no-op without one).
    pub fn rollback(&self) -> DbResult<()> {
        let had_txn = self.txn.lock().is_some();
        if !had_txn {
            return Ok(());
        }
        let resp = self.call(&Request::Rollback)?;
        *self.txn.lock() = None;
        match resp {
            Response::Ok { .. } => Ok(()),
            Response::Err { kind, message, .. } => Err(decode_error_kind(kind, message)),
            Response::Rows { .. } => Err(DbError::Protocol("rows response to rollback".into())),
        }
    }

    /// Commit any open transaction and close. Further statements fail.
    pub fn close(&self) -> DbResult<()> {
        self.commit()?;
        *self.closed.lock() = true;
        Ok(())
    }

    /// The server this session talks to.
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("txn", &*self.txn.lock())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ConstraintKind;
    use crate::schema::TableBuilder;
    use crate::value::{DataType, Value};

    fn server() -> Arc<Server> {
        let s = Server::start(DbConfig::test());
        let frames = TableBuilder::new("frames")
            .col("frame_id", DataType::Int)
            .col("exposure", DataType::Float)
            .pk(&["frame_id"])
            .build()
            .unwrap();
        let objects = TableBuilder::new("objects")
            .col("object_id", DataType::Int)
            .col("frame_id", DataType::Int)
            .pk(&["object_id"])
            .fk("fk_objects_frame", &["frame_id"], "frames")
            .build()
            .unwrap();
        s.engine().create_table(frames).unwrap();
        s.engine().create_table(objects).unwrap();
        s
    }

    fn frame(i: i64) -> Row {
        vec![Value::Int(i), Value::Float(30.0)]
    }

    fn object(i: i64, f: i64) -> Row {
        vec![Value::Int(i), Value::Int(f)]
    }

    #[test]
    fn session_insert_commit_visible() {
        let s = server();
        let sess = s.connect();
        let stmt = sess.prepare_insert("frames").unwrap();
        sess.execute(&stmt, frame(1)).unwrap();
        sess.commit().unwrap();
        let fid = s.engine().table_id("frames").unwrap();
        assert_eq!(s.engine().row_count(fid), 1);
        assert_eq!(s.network().calls(), 2, "one insert + one commit");
    }

    #[test]
    fn batch_reports_jdbc_failure_shape() {
        let s = server();
        let sess = s.connect();
        let fstmt = sess.prepare_insert("frames").unwrap();
        sess.execute(&fstmt, frame(1)).unwrap();
        let ostmt = sess.prepare_insert("objects").unwrap();
        let rows: Vec<Row> = vec![
            object(1, 1),
            object(2, 1),
            object(2, 1), // dup PK
            object(3, 1),
        ];
        let out = sess.execute_batch(&ostmt, &rows).unwrap();
        assert_eq!(out.applied, 2);
        let (off, err) = out.failed.unwrap();
        assert_eq!(off, 2);
        assert_eq!(err.constraint_kind(), Some(ConstraintKind::PrimaryKey));
        sess.commit().unwrap();
        let oid = s.engine().table_id("objects").unwrap();
        assert_eq!(s.engine().row_count(oid), 2);
    }

    #[test]
    fn fk_error_travels_the_wire() {
        let s = server();
        let sess = s.connect();
        let ostmt = sess.prepare_insert("objects").unwrap();
        let out = sess.execute_batch(&ostmt, &[object(1, 42)]).unwrap();
        let (_, err) = out.failed.unwrap();
        assert_eq!(err.constraint_kind(), Some(ConstraintKind::ForeignKey));
    }

    #[test]
    fn rollback_discards_work() {
        let s = server();
        let sess = s.connect();
        let stmt = sess.prepare_insert("frames").unwrap();
        sess.execute(&stmt, frame(1)).unwrap();
        sess.rollback().unwrap();
        let fid = s.engine().table_id("frames").unwrap();
        assert_eq!(s.engine().row_count(fid), 0);
        // Session can start a fresh transaction.
        sess.execute(&stmt, frame(1)).unwrap();
        sess.commit().unwrap();
        assert_eq!(s.engine().row_count(fid), 1);
    }

    #[test]
    fn closed_session_rejects_statements() {
        let s = server();
        let sess = s.connect();
        let stmt = sess.prepare_insert("frames").unwrap();
        sess.close().unwrap();
        assert_eq!(sess.execute(&stmt, frame(1)), Err(DbError::SessionClosed));
    }

    #[test]
    fn client_side_arity_check() {
        let s = server();
        let sess = s.connect();
        let stmt = sess.prepare_insert("frames").unwrap();
        let err = sess.execute(&stmt, vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, DbError::ArityMismatch { .. }));
        assert_eq!(s.network().calls(), 0, "rejected before hitting the wire");
    }

    #[test]
    fn unknown_table_rejected_at_prepare() {
        let s = server();
        let sess = s.connect();
        assert!(matches!(
            sess.prepare_insert("nope"),
            Err(DbError::NoSuchTable(_))
        ));
    }

    #[test]
    fn bind_spill_accounted_for_large_batches() {
        let cfg = DbConfig {
            bind_buffer_bytes: 256,
            ..DbConfig::test()
        };
        let s = Server::start(cfg);
        let t = TableBuilder::new("t")
            .col("id", DataType::Int)
            .col("pad", DataType::Text(100))
            .pk(&["id"])
            .build()
            .unwrap();
        s.engine().create_table(t).unwrap();
        let sess = s.connect();
        let stmt = sess.prepare_insert("t").unwrap();
        let rows: Vec<Row> = (0..50)
            .map(|i| vec![Value::Int(i), Value::Text("x".repeat(50))])
            .collect();
        sess.execute_batch(&stmt, &rows).unwrap();
        assert!(s.engine().stats().snapshot().bind_spills >= 1);
        assert!(s.engine().stats().snapshot().bind_spill_bytes > 0);
    }

    #[test]
    fn fault_shim_preserves_every_nth_semantics() {
        let s = server();
        s.inject_call_faults(2);
        let sess = s.connect();
        let stmt = sess.prepare_insert("frames").unwrap();
        // Call 1 proceeds, call 2 resets, …
        sess.execute(&stmt, frame(1)).unwrap();
        let err = sess.execute(&stmt, frame(2)).unwrap_err();
        assert!(matches!(err, DbError::Protocol(m) if m.contains("connection reset")));
        assert_eq!(s.fault_count(crate::fault::FaultKind::Reset), 1);
        s.inject_call_faults(0);
        sess.execute(&stmt, frame(2)).unwrap();
        sess.commit().unwrap();
        assert_eq!(s.faults_injected(), 1, "counts survive plan removal");
        assert_eq!(s.faults_by_kind().get("reset"), Some(&1));
    }

    #[test]
    fn busy_fault_surfaces_server_busy() {
        let s = server();
        s.set_fault_plan(Some(FaultPlan::new(
            crate::fault::FaultPlanConfig::new(5).with_busy(1.0),
        )));
        let sess = s.connect();
        let stmt = sess.prepare_insert("frames").unwrap();
        let err = sess.execute(&stmt, frame(1)).unwrap_err();
        assert!(matches!(err, DbError::ServerBusy(_)));
        assert!(s.fault_count(crate::fault::FaultKind::Busy) >= 1);
    }

    #[test]
    fn latency_spike_times_out_only_past_budget() {
        let mk = || {
            let s = server();
            s.set_fault_plan(Some(FaultPlan::new(
                crate::fault::FaultPlanConfig::new(5).with_latency(1.0, Duration::from_millis(10)),
            )));
            s
        };
        // Generous budget: the spike is absorbed, the call succeeds.
        let s = mk();
        let sess = s.connect();
        sess.set_call_timeout(Some(Duration::from_secs(1)));
        let stmt = sess.prepare_insert("frames").unwrap();
        sess.execute(&stmt, frame(1)).unwrap();
        assert!(s.fault_count(crate::fault::FaultKind::Latency) >= 1);
        let spiked = s.network().modeled_time();
        assert!(spiked >= Duration::from_millis(10), "spike charged to net");
        // Tight budget: the same spike now breaches it.
        let s = mk();
        let sess = s.connect();
        sess.set_call_timeout(Some(Duration::from_millis(5)));
        let stmt = sess.prepare_insert("frames").unwrap();
        let err = sess.execute(&stmt, frame(1)).unwrap_err();
        assert!(matches!(err, DbError::Timeout(_)));
    }

    #[test]
    fn disk_full_keeps_transaction_retryable() {
        let s = server();
        let sess = s.connect();
        let stmt = sess.prepare_insert("frames").unwrap();
        sess.execute(&stmt, frame(1)).unwrap();
        s.set_fault_plan(Some(FaultPlan::new(
            crate::fault::FaultPlanConfig::new(5).with_disk_full(1.0),
        )));
        let err = sess.commit().unwrap_err();
        assert!(matches!(err, DbError::DiskFull(_)));
        // The transaction is still open: clearing the plan and retrying
        // the commit lands the row exactly once.
        assert!(sess.current_txn().is_some());
        s.set_fault_plan(None);
        sess.commit().unwrap();
        let fid = s.engine().table_id("frames").unwrap();
        assert_eq!(s.engine().row_count(fid), 1);
    }

    #[test]
    fn corruption_rejects_batch_before_anything_applies() {
        let s = server();
        s.set_fault_plan(Some(FaultPlan::new(
            crate::fault::FaultPlanConfig::new(5).with_corruption(1.0),
        )));
        let sess = s.connect();
        let stmt = sess.prepare_insert("frames").unwrap();
        let err = sess
            .execute_batch(&stmt, &[frame(1), frame(2)])
            .unwrap_err();
        assert!(matches!(err, DbError::Corruption(_)));
        s.set_fault_plan(None);
        sess.rollback().unwrap();
        let fid = s.engine().table_id("frames").unwrap();
        assert_eq!(s.engine().row_count(fid), 0, "nothing applied");
    }

    #[test]
    fn crash_on_flush_downs_server_until_recovery() {
        let s = server();
        let sess = s.connect();
        let stmt = sess.prepare_insert("frames").unwrap();
        sess.execute(&stmt, frame(1)).unwrap();
        sess.commit().unwrap();
        // Crash on the next commit (the plan counts from installation).
        s.set_fault_plan(Some(FaultPlan::new(
            crate::fault::FaultPlanConfig::new(5).with_crash_on_flush(1),
        )));
        sess.execute(&stmt, frame(2)).unwrap();
        let err = sess.commit().unwrap_err();
        assert!(matches!(err, DbError::ServerDown(_)));
        assert!(s.is_crashed());
        // Every further call fails, on any session.
        let sess2 = s.connect();
        let stmt2 = sess2.prepare_insert("frames").unwrap();
        assert!(matches!(
            sess2.execute(&stmt2, frame(3)),
            Err(DbError::ServerDown(_))
        ));
        // Recovery from the durable log sees only the first commit.
        let log = s.engine().durable_log();
        let schemas: Vec<_> = ["frames", "objects"]
            .iter()
            .map(|n| (*s.engine().schema(s.engine().table_id(n).unwrap())).clone())
            .collect();
        let engine = Engine::recover_from_log(DbConfig::test(), schemas, &log).unwrap();
        let s2 = Server::with_engine(engine);
        assert!(!s2.is_crashed());
        let fid = s2.engine().table_id("frames").unwrap();
        assert_eq!(s2.engine().row_count(fid), 1, "torn commit not replayed");
    }

    #[test]
    fn stale_epoch_is_fenced_out_before_anything_applies() {
        let s = server();
        let zombie = s.connect();
        zombie.set_fence(Some(Fence { key: 7, epoch: 1 }));
        let stmt = zombie.prepare_insert("frames").unwrap();
        zombie.execute(&stmt, frame(1)).unwrap();
        // The lease is reclaimed: the floor moves past the zombie's epoch.
        s.advance_fence(7, 2);
        assert_eq!(s.fence_floor(7), 2);
        let err = zombie.execute(&stmt, frame(2)).unwrap_err();
        assert!(matches!(err, DbError::FencedOut(_)), "got {err}");
        let err = zombie.commit().unwrap_err();
        assert!(matches!(err, DbError::FencedOut(_)), "commit fenced: {err}");
        // Rollback is deliberately unfenced, so the zombie can still
        // discard the stale rows it applied before the fence moved…
        assert!(zombie.current_txn().is_some(), "fenced commit keeps txn");
        zombie.rollback().unwrap();
        // …and the new lease holder at the floor epoch proceeds normally.
        let holder = s.connect();
        holder.set_fence(Some(Fence { key: 7, epoch: 2 }));
        let hstmt = holder.prepare_insert("frames").unwrap();
        holder.execute(&hstmt, frame(10)).unwrap();
        holder.commit().unwrap();
        let fid = s.engine().table_id("frames").unwrap();
        assert_eq!(s.engine().row_count(fid), 1, "only the holder's row");
        // Floors are max-merged, never regressed.
        s.advance_fence(7, 1);
        assert_eq!(s.fence_floor(7), 2);
    }

    #[test]
    fn queries_see_committed_rows_only() {
        let s = server();
        let writer = s.connect();
        let stmt = writer.prepare_insert("frames").unwrap();
        writer.execute(&stmt, frame(1)).unwrap();
        writer.commit().unwrap();
        writer.execute(&stmt, frame(2)).unwrap(); // left uncommitted

        let reader = s.connect();
        let reply = reader.query_scan("frames", None).unwrap();
        assert_eq!(reply.rows.len(), 1, "uncommitted frame 2 must be hidden");
        assert_eq!(reply.rows[0][0], Value::Int(1));

        // Point lookups agree on both sides of the commit boundary.
        let hit = reader.query_pk("frames", vec![Value::Int(1)]).unwrap();
        assert_eq!(hit.rows.len(), 1);
        let miss = reader.query_pk("frames", vec![Value::Int(2)]).unwrap();
        assert!(miss.rows.is_empty(), "uncommitted pk entry must be hidden");

        writer.commit().unwrap();
        let reply = reader.query_scan("frames", None).unwrap();
        assert_eq!(reply.rows.len(), 2, "both visible after commit");
    }

    #[test]
    fn query_rollback_never_exposes_rows() {
        let s = server();
        let writer = s.connect();
        let stmt = writer.prepare_insert("frames").unwrap();
        writer.execute(&stmt, frame(7)).unwrap();
        let reader = s.connect();
        assert!(reader.query_scan("frames", None).unwrap().rows.is_empty());
        writer.rollback().unwrap();
        assert!(reader.query_scan("frames", None).unwrap().rows.is_empty());
        assert!(reader
            .query_pk("frames", vec![Value::Int(7)])
            .unwrap()
            .rows
            .is_empty());
    }

    #[test]
    fn scan_filter_pushdown_travels_the_wire() {
        let s = server();
        let sess = s.connect();
        let stmt = sess.prepare_insert("frames").unwrap();
        for i in 0..10 {
            sess.execute(&stmt, frame(i)).unwrap();
        }
        sess.commit().unwrap();
        let reply = sess
            .query_scan(
                "frames",
                Some(crate::expr::Expr::cmp(0, crate::expr::CmpOp::Ge, 7i64)),
            )
            .unwrap();
        assert_eq!(reply.rows.len(), 3);
    }

    #[test]
    fn query_latency_includes_modeled_service() {
        let cfg = DbConfig {
            per_call_cpu: Duration::from_micros(1200),
            scan_row_cpu: Duration::from_micros(2),
            net_rtt: Duration::from_millis(2),
            ..DbConfig::test()
        };
        let s = Server::start(cfg);
        let frames = TableBuilder::new("frames")
            .col("frame_id", DataType::Int)
            .col("exposure", DataType::Float)
            .pk(&["frame_id"])
            .build()
            .unwrap();
        s.engine().create_table(frames).unwrap();
        let sess = s.connect();
        let stmt = sess.prepare_insert("frames").unwrap();
        for i in 0..100 {
            sess.execute(&stmt, frame(i)).unwrap();
        }
        sess.commit().unwrap();
        let reply = sess.query_scan("frames", None).unwrap();
        assert_eq!(reply.rows.len(), 100);
        // RTT (2 ms) + per-call (1.2 ms) + 100 rows × 2 µs = ≥ 3.4 ms.
        assert!(
            reply.modeled >= Duration::from_micros(3400),
            "modeled {:?} too small",
            reply.modeled
        );
        // A pk probe examines one row: strictly cheaper than the scan.
        let probe = sess.query_pk("frames", vec![Value::Int(5)]).unwrap();
        assert!(probe.modeled < reply.modeled);
    }

    #[test]
    fn queries_never_open_a_transaction() {
        let s = server();
        let sess = s.connect();
        sess.query_scan("frames", None).unwrap();
        assert_eq!(sess.current_txn(), None);
    }

    #[test]
    fn query_bad_index_is_an_error_not_a_panic() {
        let s = server();
        let sess = s.connect();
        let err = sess
            .query_index_range(
                "frames",
                "no_such_index",
                vec![Value::Int(0)],
                vec![Value::Int(1)],
            )
            .unwrap_err();
        assert!(
            matches!(err, DbError::Protocol(_) | DbError::NoSuchIndex(_)),
            "got {err}"
        );
        let err = sess.query_scan("nope", None).unwrap_err();
        assert!(matches!(err, DbError::NoSuchTable(_)));
    }

    #[test]
    fn concurrent_sessions_isolated_txns() {
        let s = server();
        let s1 = s.connect();
        let s2 = s.connect();
        let f1 = s1.prepare_insert("frames").unwrap();
        let f2 = s2.prepare_insert("frames").unwrap();
        s1.execute(&f1, frame(1)).unwrap();
        s2.execute(&f2, frame(2)).unwrap();
        assert_ne!(s1.current_txn(), s2.current_txn());
        s1.rollback().unwrap();
        s2.commit().unwrap();
        let fid = s.engine().table_id("frames").unwrap();
        assert_eq!(s.engine().row_count(fid), 1);
    }
}
