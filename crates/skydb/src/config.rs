//! Engine and server configuration.
//!
//! Defaults approximate the paper's environment (§5): an 8-processor
//! database server, Gigabit Ethernet, three RAID devices, and Oracle-like
//! tuning knobs. Every knob the paper turns in §4.5 is a field here so the
//! ablation benches can turn it back.

use std::time::Duration;

use skysim::disk::DiskModel;
use skysim::net::NetworkModel;
use skysim::time::TimeScale;

/// Full configuration for an [`Engine`] + [`Server`] pair.
///
/// [`Engine`]: crate::engine::Engine
/// [`Server`]: crate::server::Server
#[derive(Debug, Clone)]
pub struct DbConfig {
    // ---- host ----
    /// Database-server processors (the Altix had 8).
    pub cpus: usize,
    /// Block-cache capacity in pages. §4.5.5 tunes this *down* for loading.
    pub cache_pages: usize,
    /// Writer-cycle trigger: run the cache writer after this many page
    /// dirty-events.
    pub writer_interval_pages: usize,
    /// CPU cost per cache frame examined by the writer (§4.5.5's scan).
    pub per_frame_scan: Duration,

    // ---- concurrency ----
    /// Engine-wide concurrent-transaction limit (§4.4's "RDBMS limit").
    pub max_concurrent_txns: usize,
    /// Insert slots per table (ITL-like; bounds concurrent batch inserts
    /// into one hot table).
    pub table_insert_slots: usize,
    /// Penalty charged to a blocked insert-slot acquisition (lock-manager
    /// work + process wakeup).
    pub lock_wait_penalty: Duration,

    // ---- per-call CPU service model (the Oracle SQL layer we replace) ----
    /// Fixed CPU per database call (parse, round-trip handling).
    pub per_call_cpu: Duration,
    /// CPU per row inserted (bind, validate, row format).
    pub per_row_cpu: Duration,
    /// CPU per heap row examined by a query scan (the read-side analogue
    /// of `per_row_cpu`; predicate evaluation + row decode).
    pub scan_row_cpu: Duration,
    /// CPU per index entry maintained, per 8 bytes of key width.
    pub per_index_entry_cpu: Duration,
    /// CPU charged at commit (§4.5.2's "considerable amount of processing").
    pub commit_cpu: Duration,
    /// Server-side bind-array workspace per call; batches whose encoded
    /// payload exceeds it spill (extra CPU + temp writes) — this is what
    /// puts the far edge on the Fig. 5 batch-size optimum.
    pub bind_buffer_bytes: usize,
    /// CPU per byte of bind-array spill.
    pub spill_cpu_per_byte: Duration,

    // ---- storage ----
    /// Disk service model for all devices.
    pub disk: DiskModel,
    /// `true` = data/index/log on three separate devices (§4.5.3);
    /// `false` = one shared device (ablation A6).
    pub separate_devices: bool,
    /// WAL in-memory buffer capacity in bytes.
    pub log_buffer_bytes: usize,

    // ---- network ----
    /// Round-trip latency per database call.
    pub net_rtt: Duration,
    /// Link bandwidth in bytes/second.
    pub net_bytes_per_sec: u64,

    // ---- simulation ----
    /// Global time scale: how much of modeled waits is really waited.
    pub scale: TimeScale,
}

impl DbConfig {
    /// The paper-like environment at the given time scale.
    ///
    /// The service-time constants are calibrated once (see
    /// `EXPERIMENTS.md`) so that the modeled per-row costs land where the
    /// paper's measurements put Oracle 10g on the 2005 Altix: a singleton
    /// insert costs a few milliseconds end-to-end (driver round trip + SQL
    /// execution), a batched insert amortizes the fixed ~3 ms per call over
    /// `batch-size` rows, and the Fig. 4 bulk:non-bulk ratio comes out in
    /// the observed 7–9× band. The constants are then held fixed for every
    /// other experiment.
    pub fn paper(scale: TimeScale) -> Self {
        DbConfig {
            cpus: 8,
            cache_pages: 4096,
            writer_interval_pages: 32,
            per_frame_scan: Duration::from_micros(2),
            max_concurrent_txns: 24,
            table_insert_slots: 5,
            lock_wait_penalty: Duration::from_millis(14),
            per_call_cpu: Duration::from_micros(1200),
            per_row_cpu: Duration::from_micros(250),
            scan_row_cpu: Duration::from_micros(2),
            per_index_entry_cpu: Duration::from_micros(28), // per 8 key bytes
            commit_cpu: Duration::from_millis(20),
            bind_buffer_bytes: 2900,
            spill_cpu_per_byte: Duration::from_micros(2),
            disk: DiskModel::raided_sata(),
            separate_devices: true,
            log_buffer_bytes: 1 << 20,
            net_rtt: Duration::from_millis(2),
            net_bytes_per_sec: NetworkModel::GIGE_BYTES_PER_SEC,
            scale,
        }
    }

    /// A free configuration: no modeled waits, generous limits. Unit tests
    /// use this to exercise pure logic.
    pub fn test() -> Self {
        DbConfig {
            cpus: 8,
            cache_pages: 1024,
            writer_interval_pages: 64,
            per_frame_scan: Duration::ZERO,
            max_concurrent_txns: 64,
            table_insert_slots: 64,
            lock_wait_penalty: Duration::ZERO,
            per_call_cpu: Duration::ZERO,
            per_row_cpu: Duration::ZERO,
            scan_row_cpu: Duration::ZERO,
            per_index_entry_cpu: Duration::ZERO,
            commit_cpu: Duration::ZERO,
            bind_buffer_bytes: usize::MAX,
            spill_cpu_per_byte: Duration::ZERO,
            disk: DiskModel::free(),
            separate_devices: true,
            log_buffer_bytes: 1 << 20,
            net_rtt: Duration::ZERO,
            net_bytes_per_sec: u64::MAX,
            scale: TimeScale::ZERO,
        }
    }

    /// Builder-style: set the cache size.
    pub fn with_cache_pages(mut self, pages: usize) -> Self {
        self.cache_pages = pages;
        self
    }

    /// Builder-style: set device separation.
    pub fn with_separate_devices(mut self, separate: bool) -> Self {
        self.separate_devices = separate;
        self
    }

    /// Builder-style: set the per-table insert slots.
    pub fn with_table_insert_slots(mut self, slots: usize) -> Self {
        self.table_insert_slots = slots;
        self
    }

    /// Builder-style: set the CPU count.
    pub fn with_cpus(mut self, cpus: usize) -> Self {
        self.cpus = cpus;
        self
    }
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig::paper(TimeScale::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_sane() {
        let c = DbConfig::paper(TimeScale::ZERO);
        assert_eq!(c.cpus, 8);
        assert!(
            c.table_insert_slots < c.cpus,
            "slots below CPU count drive Fig. 7"
        );
        assert!(c.bind_buffer_bytes > 0 && c.bind_buffer_bytes < 8192);
    }

    #[test]
    fn builders_chain() {
        let c = DbConfig::test()
            .with_cache_pages(7)
            .with_separate_devices(false)
            .with_table_insert_slots(3)
            .with_cpus(2);
        assert_eq!(c.cache_pages, 7);
        assert!(!c.separate_devices);
        assert_eq!(c.table_insert_slots, 3);
        assert_eq!(c.cpus, 2);
    }
}
