//! Declination-zone sharding: N independent engines behind one coordinator.
//!
//! PAPERS.md's "Large-Scale Query and XMatch, Entering the Parallel Zone"
//! (Nieto-Santisteban, Szalay, Gray) partitions a sky catalog into
//! declination *zones* so both loading and spatial queries parallelize
//! across databases. This module supplies the substrate:
//!
//! * a [`ZoneMap`]: a total, stable assignment from declination to zone —
//!   every dec maps to exactly one zone (out-of-band values clamp to the
//!   edge zones), and zone boundaries round-trip through the routing;
//! * a [`ShardGroup`]: one [`Server`] per zone behind a coordinator that
//!   routes writes by zone under **per-shard fencing epochs** and fans
//!   reads out as **scatter-gather** with per-shard timeout budgets,
//!   deterministic-jitter retries, and an explicit partial-result flag
//!   when a zone is down and the caller opted into degraded reads.
//!
//! The failover contract mirrors the loader fleet's lease machinery: when
//! the supervisor declares a shard dead it calls
//! [`ShardGroup::fence_and_take`], which bumps the zone's epoch and raises
//! the fence floor on the *old* server first — the point of no return for
//! zombie flushes — then rebuilds a replacement and swaps it in with
//! [`ShardGroup::install`]. A flush that was in flight against the old
//! generation commits into [`DbError::FencedOut`] and is requeued by the
//! loader; it can never half-apply into both generations.
//!
//! Reads are deliberately unfenced (matching [`crate::server`]): a scan
//! against a fenced-but-alive shard still answers, because fencing guards
//! *mutations* against split-brain, not reads against staleness.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use skysim::rng::SplitMix64;

use crate::error::{DbError, DbResult};
use crate::server::{Server, Session};
use crate::value::Row;
use crate::wire::Fence;

/// A total, stable declination → zone assignment: `zones` equal-width
/// bands over `[dec_min, dec_max)`, with out-of-band declinations clamped
/// to the edge zones so the map is total over every float input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneMap {
    zones: u32,
    dec_min: f64,
    dec_max: f64,
}

impl ZoneMap {
    /// Equal-width zones over the full sky, dec ∈ [−90, 90).
    pub fn full_sky(zones: u32) -> ZoneMap {
        ZoneMap::band(zones, -90.0, 90.0)
    }

    /// Equal-width zones over a declination band. A survey that only
    /// covers a strip (drift scans cover a few degrees of dec) shards the
    /// strip, so every zone actually receives rows.
    ///
    /// # Panics
    /// Panics on a zero zone count or an empty/non-finite band.
    pub fn band(zones: u32, dec_min: f64, dec_max: f64) -> ZoneMap {
        assert!(zones > 0, "a zone map needs at least one zone");
        assert!(
            dec_min.is_finite() && dec_max.is_finite() && dec_min < dec_max,
            "zone band must be a non-empty finite interval, got [{dec_min}, {dec_max})"
        );
        ZoneMap {
            zones,
            dec_min,
            dec_max,
        }
    }

    /// Number of zones.
    pub fn zones(&self) -> u32 {
        self.zones
    }

    /// The band this map covers, `(dec_min, dec_max)`.
    pub fn dec_range(&self) -> (f64, f64) {
        (self.dec_min, self.dec_max)
    }

    /// Lower boundary of `zone` (the value `bounds` reports).
    fn lower(&self, zone: u32) -> f64 {
        self.dec_min + (self.dec_max - self.dec_min) * zone as f64 / self.zones as f64
    }

    /// The zone owning `dec`. Total: NaN and out-of-band values clamp to
    /// the edge zones. Exact at boundaries: `zone_for_dec(bounds(z).0) ==
    /// z` for every zone, float rounding notwithstanding.
    pub fn zone_for_dec(&self, dec: f64) -> u32 {
        let t = (dec - self.dec_min) / (self.dec_max - self.dec_min);
        // NaN casts to 0; out-of-band saturates into the clamp below.
        let guess = (t * self.zones as f64).floor() as i64;
        let mut z = guess.clamp(0, self.zones as i64 - 1) as u32;
        // The division above can land one zone off at exact boundaries;
        // walk to the unique zone with lower(z) <= dec < lower(z + 1).
        while z > 0 && dec < self.lower(z) {
            z -= 1;
        }
        while z + 1 < self.zones && dec >= self.lower(z + 1) {
            z += 1;
        }
        z
    }

    /// The half-open declination interval `[lo, hi)` a zone owns.
    pub fn bounds(&self, zone: u32) -> (f64, f64) {
        assert!(zone < self.zones, "zone {zone} out of range");
        let hi = if zone + 1 == self.zones {
            self.dec_max
        } else {
            self.lower(zone + 1)
        };
        (self.lower(zone), hi)
    }

    /// Zones intersecting the declination interval `[dec_lo, dec_hi]` —
    /// the fan-out set for a cone search. Clamping keeps the result a
    /// superset for out-of-band intervals, never empty.
    pub fn covering_zones(&self, dec_lo: f64, dec_hi: f64) -> Vec<u32> {
        let (lo, hi) = if dec_lo <= dec_hi {
            (dec_lo, dec_hi)
        } else {
            (dec_hi, dec_lo)
        };
        (self.zone_for_dec(lo)..=self.zone_for_dec(hi)).collect()
    }
}

/// Fence key for a zone: stable FNV-1a of `"shard/<zone>"`, the same
/// construction the loader fleet uses for file leases, so one server-side
/// fence registry serves both.
pub fn shard_fence_key(zone: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("shard/{zone}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Scatter-gather behavior: per-shard budgets, retry shape, and whether
/// the caller accepts degraded (partial) answers.
#[derive(Debug, Clone)]
pub struct GatherPolicy {
    /// Attempts per zone before declaring it unavailable.
    pub attempts: u32,
    /// Per-shard call budget: each server call on a gather carries this
    /// session timeout, so one stalled shard cannot absorb the whole
    /// query's latency.
    pub per_shard_timeout: Option<Duration>,
    /// Base real-time delay between retries (doubles per attempt).
    pub backoff_base: Duration,
    /// Retry delay ceiling.
    pub backoff_cap: Duration,
    /// Seed for deterministic retry jitter.
    pub seed: u64,
    /// `true`: a zone that stays down after retries is *reported* —
    /// [`GatherResult::partial`] set, the zone listed in
    /// [`GatherResult::missing_zones`] — and the gather returns what the
    /// live zones answered. `false`: the gather fails with the zone's
    /// error. Either way an answer is never silently truncated.
    pub allow_partial: bool,
}

impl Default for GatherPolicy {
    fn default() -> Self {
        GatherPolicy {
            attempts: 4,
            per_shard_timeout: None,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(100),
            seed: 0x5EED,
            allow_partial: false,
        }
    }
}

impl GatherPolicy {
    /// Builder-style: attempts per zone.
    pub fn with_attempts(mut self, n: u32) -> Self {
        self.attempts = n.max(1);
        self
    }

    /// Builder-style: per-shard call budget.
    pub fn with_per_shard_timeout(mut self, d: Duration) -> Self {
        self.per_shard_timeout = Some(d);
        self
    }

    /// Builder-style: jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: opt into degraded (partial) reads.
    pub fn with_allow_partial(mut self, allow: bool) -> Self {
        self.allow_partial = allow;
        self
    }
}

/// What a scatter-gather read returned.
#[derive(Debug, Clone)]
pub struct GatherResult {
    /// Rows from every zone that answered, in zone order.
    pub rows: Vec<Row>,
    /// Summed modeled latency across shard calls (retries included).
    pub modeled: Duration,
    /// `true` when at least one covering zone never answered and the
    /// policy opted into degraded reads — the explicit flag that
    /// distinguishes a degraded answer from a complete one.
    pub partial: bool,
    /// The zones missing from a partial answer (empty when complete).
    pub missing_zones: Vec<u32>,
}

struct ShardSlot {
    server: RwLock<Arc<Server>>,
    epoch: AtomicU64,
}

/// One engine per declination zone behind a routing coordinator.
pub struct ShardGroup {
    map: ZoneMap,
    slots: Vec<ShardSlot>,
    policy: GatherPolicy,
    /// Tables partitioned by zone; everything else is replicated to every
    /// shard (keeping per-shard foreign keys self-contained), so reads of
    /// replicated tables go to one live shard, not all.
    zoned_tables: Vec<String>,
    /// Primary-key → zone cache for zoned point lookups, filled by
    /// broadcast hits and by the loader as it routes.
    directory: RwLock<HashMap<i64, u32>>,
    gather_ordinal: AtomicU64,
    m_queries: skyobs::CounterHandle,
    m_retries: skyobs::CounterHandle,
    m_partial: skyobs::CounterHandle,
    m_zone_failures: skyobs::CounterHandle,
    m_fenced_takes: skyobs::CounterHandle,
}

impl ShardGroup {
    /// Assemble a group from one pre-built server per zone. Metrics
    /// register in `obs` under `shard.gather.*`; `zoned` names the tables
    /// partitioned by declination (all others are treated as replicated).
    ///
    /// # Panics
    /// Panics unless `servers.len() == map.zones()`.
    pub fn new(
        map: ZoneMap,
        servers: Vec<Arc<Server>>,
        zoned: &[&str],
        policy: GatherPolicy,
        obs: &skyobs::Registry,
    ) -> ShardGroup {
        assert_eq!(
            servers.len(),
            map.zones() as usize,
            "one server per zone ({} zones)",
            map.zones()
        );
        let slots = servers
            .into_iter()
            .map(|server| ShardSlot {
                server: RwLock::new(server),
                epoch: AtomicU64::new(0),
            })
            .collect();
        ShardGroup {
            map,
            slots,
            policy,
            zoned_tables: zoned.iter().map(|t| t.to_string()).collect(),
            directory: RwLock::new(HashMap::new()),
            gather_ordinal: AtomicU64::new(0),
            m_queries: obs.counter("shard.gather.queries"),
            m_retries: obs.counter("shard.gather.retries"),
            m_partial: obs.counter("shard.gather.partial"),
            m_zone_failures: obs.counter("shard.gather.zone_failures"),
            m_fenced_takes: obs.counter("shard.fenced_takes"),
        }
    }

    /// The zone map routing this group.
    pub fn map(&self) -> &ZoneMap {
        &self.map
    }

    /// Number of shards (= zones).
    pub fn zones(&self) -> u32 {
        self.map.zones()
    }

    /// The gather policy.
    pub fn policy(&self) -> &GatherPolicy {
        &self.policy
    }

    /// Is `table` partitioned by zone (vs replicated to every shard)?
    pub fn is_zoned(&self, table: &str) -> bool {
        self.zoned_tables.iter().any(|t| t == table)
    }

    /// The current server behind `zone`.
    pub fn server(&self, zone: u32) -> Arc<Server> {
        self.slots[zone as usize].server.read().unwrap().clone()
    }

    /// The current fencing epoch of `zone`.
    pub fn epoch(&self, zone: u32) -> u64 {
        self.slots[zone as usize].epoch.load(Ordering::Acquire)
    }

    /// Raise `zone`'s epoch to at least `epoch` (max-merge) — how a
    /// restarted coordinator folds persisted epochs back in so it can
    /// never issue an epoch an earlier incarnation already fenced.
    pub fn restore_epoch(&self, zone: u32, epoch: u64) {
        let slot = &self.slots[zone as usize];
        slot.epoch.fetch_max(epoch, Ordering::AcqRel);
        let e = slot.epoch.load(Ordering::Acquire);
        self.server(zone).advance_fence(shard_fence_key(zone), e);
    }

    /// The fencing token a writer must attach to flushes for `zone`
    /// *right now*. A writer holds the token for the length of one flush;
    /// if the supervisor fences the zone meanwhile, the flush's commit is
    /// rejected with [`DbError::FencedOut`] and the writer requeues.
    pub fn write_fence(&self, zone: u32) -> Fence {
        Fence {
            key: shard_fence_key(zone),
            epoch: self.epoch(zone),
        }
    }

    /// Declare `zone`'s current generation dead: bump the epoch and raise
    /// the fence floor on the **old** server first, so any zombie flush
    /// still in flight against it is rejected before a replacement
    /// exists. Returns the old server (for log salvage) and the new
    /// epoch. The zone keeps answering through the old server until
    /// [`ShardGroup::install`] swaps the replacement in.
    pub fn fence_and_take(&self, zone: u32) -> (Arc<Server>, u64) {
        let slot = &self.slots[zone as usize];
        let new_epoch = slot.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        let old = self.server(zone);
        // Point of no return: from here the old generation rejects every
        // flush carrying the pre-bump epoch.
        old.advance_fence(shard_fence_key(zone), new_epoch);
        self.m_fenced_takes.inc();
        (old, new_epoch)
    }

    /// Swap a rebuilt server in for `zone`. The replacement's fence floor
    /// is raised to the current epoch before it becomes visible, so the
    /// fencing guarantee survives the swap.
    pub fn install(&self, zone: u32, server: Arc<Server>) {
        let slot = &self.slots[zone as usize];
        server.advance_fence(shard_fence_key(zone), slot.epoch.load(Ordering::Acquire));
        *slot.server.write().unwrap() = server;
    }

    /// Record that a zoned table's primary key lives in `zone` (the
    /// loader primes this as it routes; broadcasts also fill it).
    pub fn note_pk_zone(&self, id: i64, zone: u32) {
        self.directory.write().unwrap().insert(id, zone);
    }

    /// Directory lookup: which zone owns this primary key, if known.
    pub fn pk_zone(&self, id: i64) -> Option<u32> {
        self.directory.read().unwrap().get(&id).copied()
    }

    /// Forget the directory (a restarted coordinator rebuilds it lazily
    /// from broadcasts).
    pub fn clear_directory(&self) {
        self.directory.write().unwrap().clear();
    }

    /// Deterministic retry jitter: factor in `[0.5, 1.5)` derived from
    /// (policy seed, gather ordinal, zone, attempt) — same seed, same
    /// retry timing profile, independent of thread interleaving.
    fn retry_delay(&self, ordinal: u64, zone: u32, attempt: u32) -> Duration {
        let base = self.policy.backoff_base.as_micros() as u64;
        let scaled = base.saturating_mul(1u64 << attempt.min(16));
        let mut rng = SplitMix64::new(
            self.policy.seed
                ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ ((zone as u64 + 1) << 32)
                ^ attempt as u64,
        );
        rng.next_u64();
        let jittered = (scaled as f64 * (0.5 + rng.next_f64())) as u64;
        Duration::from_micros(jittered).min(self.policy.backoff_cap)
    }

    /// Is this error worth another attempt against the same zone? The
    /// slot is re-read on every attempt, so [`DbError::ServerDown`] is
    /// retryable: the supervisor may install a rebuilt server between
    /// attempts. (Reads are unfenced, so `FencedOut` cannot arise here.)
    fn retryable(e: &DbError) -> bool {
        matches!(
            e,
            DbError::Protocol(_)
                | DbError::ServerBusy(_)
                | DbError::Timeout(_)
                | DbError::Corruption(_)
                | DbError::ServerDown(_)
        )
    }

    /// Scatter a read over `zones`, retrying each zone with deterministic
    /// jitter under the per-shard budget, and gather per-zone results in
    /// zone order. A zone that stays down is either reported (partial) or
    /// fails the gather, per [`GatherPolicy::allow_partial`].
    pub fn gather_each<F>(&self, zones: &[u32], f: F) -> DbResult<Vec<(u32, Vec<Row>, Duration)>>
    where
        F: Fn(&Session, u32) -> DbResult<(Vec<Row>, Duration)>,
    {
        // Degraded-read bookkeeping rides on `gather`; this inner form
        // returns only the zones that answered and errors otherwise.
        let ordinal = self.gather_ordinal.fetch_add(1, Ordering::Relaxed);
        let mut out = Vec::with_capacity(zones.len());
        for &zone in zones {
            match self.query_zone(ordinal, zone, &f) {
                Ok((rows, modeled)) => out.push((zone, rows, modeled)),
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    fn query_zone<F>(&self, ordinal: u64, zone: u32, f: &F) -> DbResult<(Vec<Row>, Duration)>
    where
        F: Fn(&Session, u32) -> DbResult<(Vec<Row>, Duration)>,
    {
        let mut modeled = Duration::ZERO;
        let mut attempt = 0u32;
        loop {
            // Re-read the slot each attempt: a supervisor swap between
            // attempts is how a downed zone comes back mid-query.
            let server = self.server(zone);
            let session = server.connect();
            session.set_call_timeout(self.policy.per_shard_timeout);
            match f(&session, zone) {
                Ok((rows, m)) => return Ok((rows, modeled + m)),
                Err(e) => {
                    attempt += 1;
                    if attempt >= self.policy.attempts || !Self::retryable(&e) {
                        self.m_zone_failures.inc();
                        return Err(e);
                    }
                    self.m_retries.inc();
                    std::thread::sleep(self.retry_delay(ordinal, zone, attempt - 1));
                    modeled += self.retry_delay(ordinal, zone, attempt - 1);
                }
            }
        }
    }

    /// Scatter-gather over `zones` with the degraded-read contract
    /// applied: complete answers come back `partial: false`; with
    /// [`GatherPolicy::allow_partial`], zones that stay down are listed
    /// in [`GatherResult::missing_zones`] instead of failing the query.
    pub fn gather<F>(&self, zones: &[u32], f: F) -> DbResult<GatherResult>
    where
        F: Fn(&Session, u32) -> DbResult<(Vec<Row>, Duration)>,
    {
        self.m_queries.inc();
        let ordinal = self.gather_ordinal.fetch_add(1, Ordering::Relaxed);
        let mut result = GatherResult {
            rows: Vec::new(),
            modeled: Duration::ZERO,
            partial: false,
            missing_zones: Vec::new(),
        };
        for &zone in zones {
            match self.query_zone(ordinal, zone, &f) {
                Ok((rows, m)) => {
                    result.rows.extend(rows);
                    result.modeled += m;
                }
                Err(e) if self.policy.allow_partial => {
                    result.partial = true;
                    result.missing_zones.push(zone);
                    let _ = e;
                }
                Err(e) => return Err(e),
            }
        }
        if result.partial {
            self.m_partial.inc();
        }
        Ok(result)
    }

    /// Scan `table`: fan out to every zone for a zoned table, or to the
    /// first zone that answers for a replicated one (every shard holds a
    /// full copy, so one healthy shard suffices).
    pub fn scan(&self, table: &str, filter: Option<crate::expr::Expr>) -> DbResult<GatherResult> {
        if self.is_zoned(table) {
            let zones: Vec<u32> = (0..self.zones()).collect();
            let table = table.to_owned();
            self.gather(&zones, move |session, _| {
                let reply = session.query_scan_named(&table, filter.clone())?;
                Ok((reply.rows, reply.modeled))
            })
        } else {
            self.first_live(|session| {
                let reply = session.query_scan_named(table, filter.clone())?;
                Ok((reply.rows, reply.modeled))
            })
        }
    }

    /// Point lookup. Zoned tables route by id through the directory when
    /// it knows the owner, falling back to a broadcast that fills the
    /// directory on a hit; replicated tables ask one live shard.
    pub fn pk_lookup(&self, table: &str, key: Row) -> DbResult<GatherResult> {
        if !self.is_zoned(table) {
            return self.first_live(|session| {
                let reply = session.query_pk(table, key.clone())?;
                Ok((reply.rows, reply.modeled))
            });
        }
        let id = match key.first() {
            Some(crate::value::Value::Int(id)) => Some(*id),
            _ => None,
        };
        let zones: Vec<u32> = match id.and_then(|id| self.pk_zone(id)) {
            Some(zone) => vec![zone],
            None => (0..self.zones()).collect(),
        };
        let table = table.to_owned();
        let key2 = key.clone();
        self.m_queries.inc();
        let ordinal = self.gather_ordinal.fetch_add(1, Ordering::Relaxed);
        let mut result = GatherResult {
            rows: Vec::new(),
            modeled: Duration::ZERO,
            partial: false,
            missing_zones: Vec::new(),
        };
        for &zone in &zones {
            match self.query_zone(ordinal, zone, &|session: &Session, _| {
                let reply = session.query_pk(&table, key2.clone())?;
                Ok((reply.rows, reply.modeled))
            }) {
                Ok((rows, m)) => {
                    result.modeled += m;
                    if !rows.is_empty() {
                        if let Some(id) = id {
                            self.note_pk_zone(id, zone);
                        }
                        result.rows.extend(rows);
                        // A primary key lives in exactly one zone.
                        break;
                    }
                }
                Err(e) if self.policy.allow_partial => {
                    result.partial = true;
                    result.missing_zones.push(zone);
                    let _ = e;
                }
                Err(e) => return Err(e),
            }
        }
        if result.partial {
            self.m_partial.inc();
        }
        Ok(result)
    }

    /// Run a read against the first zone that answers — how replicated
    /// tables are served. Tries zones in order; only if every zone fails
    /// does the error (or, under `allow_partial`, a fully-partial result)
    /// surface.
    fn first_live<F>(&self, f: F) -> DbResult<GatherResult>
    where
        F: Fn(&Session) -> DbResult<(Vec<Row>, Duration)>,
    {
        self.m_queries.inc();
        let ordinal = self.gather_ordinal.fetch_add(1, Ordering::Relaxed);
        let mut last_err: Option<DbError> = None;
        for zone in 0..self.zones() {
            match self.query_zone(ordinal, zone, &|session: &Session, _| f(session)) {
                Ok((rows, m)) => {
                    return Ok(GatherResult {
                        rows,
                        modeled: m,
                        partial: false,
                        missing_zones: Vec::new(),
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        let err =
            last_err.unwrap_or_else(|| DbError::ServerDown("shard group has no live zones".into()));
        if self.policy.allow_partial {
            self.m_partial.inc();
            return Ok(GatherResult {
                rows: Vec::new(),
                modeled: Duration::ZERO,
                partial: true,
                missing_zones: (0..self.zones()).collect(),
            });
        }
        Err(err)
    }
}

impl std::fmt::Debug for ShardGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardGroup")
            .field("zones", &self.zones())
            .field("map", &self.map)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DbConfig;
    use crate::schema::TableBuilder;
    use crate::value::{DataType, Value};

    fn obj_server() -> Arc<Server> {
        let s = Server::start(DbConfig::test());
        let t = TableBuilder::new("objects")
            .col("object_id", DataType::Int)
            .col("dec", DataType::Float)
            .pk(&["object_id"])
            .build()
            .unwrap();
        s.engine().create_table(t).unwrap();
        let r = TableBuilder::new("refcat")
            .col("ref_id", DataType::Int)
            .pk(&["ref_id"])
            .build()
            .unwrap();
        s.engine().create_table(r).unwrap();
        s
    }

    fn group(n: u32) -> ShardGroup {
        let map = ZoneMap::band(n, -2.0, 2.0);
        let servers = (0..n).map(|_| obj_server()).collect();
        ShardGroup::new(
            map,
            servers,
            &["objects"],
            GatherPolicy::default().with_attempts(2),
            &skyobs::Registry::new(),
        )
    }

    fn insert_objects(g: &ShardGroup, points: &[(i64, f64)]) {
        for &(id, dec) in points {
            let zone = g.map().zone_for_dec(dec);
            let session = g.server(zone).connect();
            session.set_fence(Some(g.write_fence(zone)));
            let stmt = session.prepare_insert("objects").unwrap();
            session
                .execute(&stmt, vec![Value::Int(id), Value::Float(dec)])
                .unwrap();
            session.commit().unwrap();
            g.note_pk_zone(id, zone);
        }
    }

    #[test]
    fn zone_map_is_total_and_boundaries_round_trip() {
        let map = ZoneMap::band(7, -1.2, 2.4);
        for z in 0..7 {
            let (lo, hi) = map.bounds(z);
            assert_eq!(map.zone_for_dec(lo), z, "lower bound of zone {z}");
            assert!(lo < hi);
        }
        // Out-of-band and pathological inputs clamp, never panic.
        assert_eq!(map.zone_for_dec(-90.0), 0);
        assert_eq!(map.zone_for_dec(90.0), 6);
        assert_eq!(map.zone_for_dec(f64::NAN), 0);
        assert_eq!(map.zone_for_dec(f64::INFINITY), 6);
        assert_eq!(map.zone_for_dec(f64::NEG_INFINITY), 0);
    }

    #[test]
    fn covering_zones_clamp_and_cover() {
        let map = ZoneMap::band(4, 0.0, 4.0);
        assert_eq!(map.covering_zones(0.5, 2.5), vec![0, 1, 2]);
        assert_eq!(map.covering_zones(-10.0, -5.0), vec![0]);
        assert_eq!(map.covering_zones(3.9, 99.0), vec![3]);
        assert_eq!(map.covering_zones(2.5, 0.5), vec![0, 1, 2]);
    }

    #[test]
    fn scatter_gather_scan_concatenates_zones() {
        let g = group(3);
        insert_objects(&g, &[(1, -1.5), (2, 0.0), (3, 1.5), (4, 1.9)]);
        let res = g.scan("objects", None).unwrap();
        assert!(!res.partial);
        let mut ids: Vec<i64> = res.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn pk_lookup_routes_by_directory_and_broadcast() {
        let g = group(3);
        insert_objects(&g, &[(10, -1.5), (20, 1.5)]);
        // Directory primed by the insert helper: routed lookup.
        let res = g.pk_lookup("objects", vec![Value::Int(10)]).unwrap();
        assert_eq!(res.rows.len(), 1);
        // Forget the directory: broadcast finds it and re-primes.
        g.clear_directory();
        let res = g.pk_lookup("objects", vec![Value::Int(20)]).unwrap();
        assert_eq!(res.rows.len(), 1);
        assert_eq!(g.pk_zone(20), Some(g.map().zone_for_dec(1.5)));
    }

    #[test]
    fn fence_and_take_rejects_zombie_flush_and_install_recovers() {
        let g = group(2);
        insert_objects(&g, &[(1, -1.0)]);
        let zone = g.map().zone_for_dec(-1.0);

        // A writer starts a flush under the current epoch…
        let writer = g.server(zone).connect();
        writer.set_fence(Some(g.write_fence(zone)));
        let stmt = writer.prepare_insert("objects").unwrap();
        writer
            .execute(&stmt, vec![Value::Int(2), Value::Float(-1.1)])
            .unwrap();

        // …the supervisor fences the zone mid-flush…
        let (old, new_epoch) = g.fence_and_take(zone);
        assert_eq!(new_epoch, 1);

        // …and the zombie's commit is rejected before anything applies.
        let err = writer.commit().unwrap_err();
        assert!(matches!(err, DbError::FencedOut(_)), "got {err:?}");
        writer.rollback().unwrap();

        // Replacement rebuilt from the old generation's durable log.
        let log = old.engine().durable_log();
        let schemas = vec![
            old.engine()
                .schema(old.engine().table_id("objects").unwrap())
                .as_ref()
                .clone(),
            old.engine()
                .schema(old.engine().table_id("refcat").unwrap())
                .as_ref()
                .clone(),
        ];
        let engine =
            crate::engine::Engine::recover_from_log(DbConfig::test(), schemas, &log).unwrap();
        g.install(zone, Server::with_engine(engine));

        // The new generation serves the committed row, not the zombie's.
        let res = g.scan("objects", None).unwrap();
        assert_eq!(res.rows.len(), 1);
        // And a write under the *new* epoch lands.
        let session = g.server(zone).connect();
        session.set_fence(Some(g.write_fence(zone)));
        let stmt = session.prepare_insert("objects").unwrap();
        session
            .execute(&stmt, vec![Value::Int(3), Value::Float(-1.2)])
            .unwrap();
        session.commit().unwrap();
    }

    #[test]
    fn partial_reads_are_flagged_never_silent() {
        let g = {
            let map = ZoneMap::band(2, -2.0, 2.0);
            let servers = (0..2).map(|_| obj_server()).collect();
            ShardGroup::new(
                map,
                servers,
                &["objects"],
                GatherPolicy::default()
                    .with_attempts(2)
                    .with_allow_partial(true),
                &skyobs::Registry::new(),
            )
        };
        insert_objects(&g, &[(1, -1.0), (2, 1.0)]);
        g.server(1).crash();
        let res = g.scan("objects", None).unwrap();
        assert!(res.partial, "a downed zone must flag the answer partial");
        assert_eq!(res.missing_zones, vec![1]);
        assert_eq!(res.rows.len(), 1, "the live zone still answers");

        // Without the opt-in, the same read errors instead of truncating.
        let strict = {
            let map = ZoneMap::band(2, -2.0, 2.0);
            let servers = vec![g.server(0), g.server(1)];
            ShardGroup::new(
                map,
                servers,
                &["objects"],
                GatherPolicy::default().with_attempts(2),
                &skyobs::Registry::new(),
            )
        };
        let err = strict.scan("objects", None).unwrap_err();
        assert!(matches!(err, DbError::ServerDown(_)), "got {err:?}");
    }

    #[test]
    fn replicated_tables_fail_over_to_a_live_zone() {
        let g = group(3);
        for zone in 0..3 {
            let session = g.server(zone).connect();
            let stmt = session.prepare_insert("refcat").unwrap();
            session.execute(&stmt, vec![Value::Int(7)]).unwrap();
            session.commit().unwrap();
        }
        g.server(0).crash();
        let res = g.scan("refcat", None).unwrap();
        assert!(!res.partial);
        assert_eq!(res.rows.len(), 1, "one live replica answers");
        let res = g.pk_lookup("refcat", vec![Value::Int(7)]).unwrap();
        assert_eq!(res.rows.len(), 1);
    }

    #[test]
    fn restore_epoch_max_merges_and_fences() {
        let g = group(2);
        g.restore_epoch(0, 5);
        assert_eq!(g.epoch(0), 5);
        g.restore_epoch(0, 3);
        assert_eq!(g.epoch(0), 5, "epochs never move backwards");
        assert_eq!(g.server(0).fence_floor(shard_fence_key(0)), 5);
    }
}
