//! CasJobs-style multi-user query serving tier.
//!
//! PAPERS.md's "Batch is back: CasJobs, serving multi-TB data on the Web"
//! (O'Mullane, Li, Nieto-Santisteban, Szalay, Thakar, Gray) describes the
//! architecture this module reproduces on top of [`Server`]:
//!
//! * a **fast queue**: short-deadline queries executed synchronously under
//!   a bounded slot pool, so interactive users get sub-second answers even
//!   while the nightly bulk load is flushing;
//! * a **slow/batch queue**: explicitly submitted (or demoted) jobs with
//!   states submitted → running → done, executed by worker threads, their
//!   results **materialized into per-user MyDB scratch tables** the user
//!   can query later;
//! * **deadline-based demotion**: a fast query whose *modeled* latency
//!   overruns the fast deadline is killed and resubmitted to the slow
//!   queue ([`FastOutcome::Demoted`]), exactly CasJobs' "your query was
//!   moved to the long queue" behavior;
//! * **per-user quotas**: concurrent fast queries, open slow jobs, and
//!   total MyDB rows are all bounded per user.
//!
//! Admission decisions run on *modeled* latency, so they are deterministic
//! at `TimeScale::ZERO` and the same seeds produce the same demotions in
//! CI as on a laptop.
//!
//! Every decision is observable through `serve.*` counters and histograms
//! in the server's [`skyobs::Registry`]: `serve.fast.{admitted, rejected,
//! completed, demoted}`, `serve.slow.{submitted, completed, failed}`,
//! `serve.mydb.{rows, tables}`, and latency histograms
//! `serve.fast.latency_us` / `serve.fast.modeled_us` /
//! `serve.slow.latency_us` / `serve.slow.queue_wait_us`.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use skyhtm::{cone_key_ranges_at, separation_deg, Cone, CATALOG_DEPTH};
use skysim::cpu::Semaphore;

use crate::error::{DbError, DbResult};
use crate::expr::Expr;
use crate::schema::TableSchema;
use crate::server::{QueryReply, Server, Session};
use crate::shard::{GatherResult, ShardGroup};
use crate::value::{Row, Value};

/// Serving-tier configuration: queue shapes, deadlines, and quotas.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Modeled-latency deadline for the fast queue: a fast query whose
    /// end-to-end modeled latency exceeds this is demoted to the slow
    /// queue.
    pub fast_deadline: Duration,
    /// Concurrent fast-query executions (the fast queue's slot pool).
    pub fast_slots: usize,
    /// Background workers draining the slow queue.
    pub slow_workers: usize,
    /// Per-user cap on *concurrent* fast queries.
    pub fast_per_user: usize,
    /// Per-user cap on open (submitted or running) slow jobs.
    pub slow_per_user: usize,
    /// Per-user cap on total rows materialized into MyDB scratch tables.
    pub mydb_row_quota: u64,
    /// Depth the catalog's `htmid` column is computed at; cover ranges
    /// are expressed here so they select stored ids.
    pub htm_depth: u8,
    /// Depth the cone cover subdivides to. Shallower than
    /// [`ServeConfig::htm_depth`]: each coarse trixel widens to its
    /// deep id range, so a cone costs tens of range scans, not tens of
    /// thousands (the cover stays a superset; candidates are re-filtered
    /// by true angular distance).
    pub cover_depth: u8,
    /// Table cone searches run against.
    pub cone_table: String,
    /// The `htmid` secondary index on [`ServeConfig::cone_table`].
    pub cone_index: String,
    /// Right-ascension column name in the cone table (degrees).
    pub ra_column: String,
    /// Declination column name in the cone table (degrees).
    pub dec_column: String,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            fast_deadline: Duration::from_millis(500),
            fast_slots: 8,
            slow_workers: 2,
            fast_per_user: 2,
            slow_per_user: 8,
            mydb_row_quota: 500_000,
            htm_depth: CATALOG_DEPTH,
            cover_depth: 8,
            cone_table: "objects".into(),
            cone_index: "idx_objects_htmid".into(),
            ra_column: "ra".into(),
            dec_column: "dec".into(),
        }
    }
}

impl ServeConfig {
    /// Builder-style: set the fast-queue deadline.
    pub fn with_fast_deadline(mut self, d: Duration) -> Self {
        self.fast_deadline = d;
        self
    }

    /// Builder-style: set the fast slot count.
    pub fn with_fast_slots(mut self, n: usize) -> Self {
        self.fast_slots = n;
        self
    }

    /// Builder-style: set the slow worker count.
    pub fn with_slow_workers(mut self, n: usize) -> Self {
        self.slow_workers = n;
        self
    }

    /// Builder-style: set the per-user MyDB row quota.
    pub fn with_mydb_row_quota(mut self, rows: u64) -> Self {
        self.mydb_row_quota = rows;
        self
    }

    /// Builder-style: set the per-user concurrent fast-query cap.
    pub fn with_fast_per_user(mut self, n: usize) -> Self {
        self.fast_per_user = n;
        self
    }

    /// Builder-style: set the per-user open slow-job cap.
    pub fn with_slow_per_user(mut self, n: usize) -> Self {
        self.slow_per_user = n;
        self
    }
}

/// A user query, expressible on either queue.
#[derive(Debug, Clone)]
pub enum Query {
    /// Scan `table` with an optional pushed-down filter.
    Scan {
        /// Table name.
        table: String,
        /// Optional filter evaluated server-side.
        filter: Option<Expr>,
    },
    /// Primary-key point lookup.
    PkLookup {
        /// Table name.
        table: String,
        /// Primary-key values in key-column order.
        key: Row,
    },
    /// Cone search: all rows of the configured cone table within
    /// `radius_arcmin` of (ra, dec), routed through `skyhtm` trixel
    /// covers and re-filtered by true angular distance.
    Cone {
        /// Right ascension of the cone center, degrees.
        ra_deg: f64,
        /// Declination of the cone center, degrees.
        dec_deg: f64,
        /// Cone radius, arcminutes.
        radius_arcmin: f64,
    },
}

/// A completed fast-queue execution.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Result rows.
    pub rows: Vec<Row>,
    /// End-to-end modeled latency (round trips + server CPU service).
    pub modeled: Duration,
    /// Wall-clock execution time observed by the serving tier.
    pub wall: Duration,
    /// `true` when the answer is *degraded*: one or more covering shards
    /// never answered and the group's gather policy opted into partial
    /// reads. A single-server backend always reports `false`. The
    /// contract: an answer is either shard-complete or explicitly
    /// partial — never silently truncated.
    pub partial: bool,
    /// The zones missing from a partial answer (empty when complete).
    pub missing_zones: Vec<u32>,
}

/// Outcome of a fast-queue query.
#[derive(Debug, Clone)]
pub enum FastOutcome {
    /// Completed within the fast deadline.
    Done(QueryResult),
    /// Overran the deadline; resubmitted to the slow queue as this job
    /// (CasJobs' "moved to the long queue").
    Demoted(JobId),
}

/// Identifier of a slow-queue job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// Lifecycle of a slow-queue job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Queued, not yet picked up by a worker.
    Submitted,
    /// A worker is executing it.
    Running,
    /// Finished; results live in the job's MyDB table.
    Done,
    /// Failed (database error or quota breach); the message says why.
    Failed(String),
}

/// Serving-tier errors (admission and job lookup).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// An admission-control rejection (per-user quota).
    QuotaExceeded(String),
    /// Unknown job id.
    NoSuchJob(JobId),
    /// The underlying database failed the query.
    Db(DbError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QuotaExceeded(m) => write!(f, "quota exceeded: {m}"),
            ServeError::NoSuchJob(id) => write!(f, "no such job {id}"),
            ServeError::Db(e) => write!(f, "database error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<DbError> for ServeError {
    fn from(e: DbError) -> Self {
        ServeError::Db(e)
    }
}

#[derive(Debug)]
struct Job {
    user: String,
    query: Query,
    state: JobState,
    /// MyDB table holding the results once `Done`.
    result_table: Option<String>,
    /// Rows materialized (once `Done`).
    result_rows: u64,
    submitted_at: Instant,
}

#[derive(Debug, Default)]
struct UserUsage {
    fast_inflight: usize,
    slow_open: usize,
    mydb_rows: u64,
}

#[derive(Debug, Default)]
struct ServeState {
    queue: VecDeque<JobId>,
    jobs: HashMap<JobId, Job>,
    users: HashMap<String, UserUsage>,
}

/// What the serving tier executes queries against: one engine, or a
/// declination-sharded group routed through scatter-gather.
enum Backend {
    /// A single server owns every table.
    Single(Arc<Server>),
    /// A [`ShardGroup`]: zoned tables fan out, replicated tables pick a
    /// live zone, cones fan to covering zones only. MyDB scratch tables
    /// are materialized on the *home* shard (zone 0's current server).
    Sharded(Arc<ShardGroup>),
}

impl Backend {
    /// The server MyDB scratch tables (and catalog introspection for
    /// result schemas) live on. Resolved per call, so a failed-over home
    /// shard picks up its rebuilt replacement.
    fn home(&self) -> Arc<Server> {
        match self {
            Backend::Single(s) => s.clone(),
            Backend::Sharded(g) => g.server(0),
        }
    }
}

struct ServeInner {
    backend: Backend,
    cfg: ServeConfig,
    fast_slots: Semaphore,
    state: Mutex<ServeState>,
    /// Wakes slow workers when a job is queued (or shutdown begins).
    job_ready: Condvar,
    /// Wakes `wait_job` / `drain` callers when a job finishes.
    job_done: Condvar,
    shutdown: AtomicBool,
    next_job: AtomicU64,
    m_fast_admitted: skyobs::CounterHandle,
    m_fast_rejected: skyobs::CounterHandle,
    m_fast_completed: skyobs::CounterHandle,
    m_fast_demoted: skyobs::CounterHandle,
    m_slow_submitted: skyobs::CounterHandle,
    m_slow_completed: skyobs::CounterHandle,
    m_slow_failed: skyobs::CounterHandle,
    m_mydb_rows: skyobs::CounterHandle,
    m_mydb_tables: skyobs::CounterHandle,
    h_fast_latency: skyobs::HistogramHandle,
    h_fast_modeled: skyobs::HistogramHandle,
    h_slow_latency: skyobs::HistogramHandle,
    h_slow_queue_wait: skyobs::HistogramHandle,
}

/// The serving front end: owns the queues, quotas, and slow workers.
///
/// Dropping the service shuts the workers down (queued jobs that have not
/// started are abandoned); call [`QueryService::drain`] first to let the
/// queue empty.
pub struct QueryService {
    inner: Arc<ServeInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl QueryService {
    /// Start the serving tier on `server` with `cfg`. Metrics register in
    /// the server's observability registry under `serve.*`.
    pub fn start(server: Arc<Server>, cfg: ServeConfig) -> QueryService {
        let obs = server.obs().clone();
        Self::start_backend(Backend::Single(server), cfg, &obs)
    }

    /// Start the serving tier over a declination-sharded group. Zoned
    /// scans and cones scatter-gather across covering shards under the
    /// group's [`crate::shard::GatherPolicy`]; point lookups route by id;
    /// MyDB scratch tables land on the home shard (zone 0). Metrics
    /// register in `obs` under `serve.*`.
    pub fn start_sharded(
        group: Arc<ShardGroup>,
        cfg: ServeConfig,
        obs: &skyobs::Registry,
    ) -> QueryService {
        Self::start_backend(Backend::Sharded(group), cfg, obs)
    }

    fn start_backend(backend: Backend, cfg: ServeConfig, obs: &skyobs::Registry) -> QueryService {
        assert!(cfg.fast_slots > 0, "fast queue needs at least one slot");
        let inner = Arc::new(ServeInner {
            fast_slots: Semaphore::new(cfg.fast_slots),
            state: Mutex::new(ServeState::default()),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_job: AtomicU64::new(1),
            m_fast_admitted: obs.counter("serve.fast.admitted"),
            m_fast_rejected: obs.counter("serve.fast.rejected"),
            m_fast_completed: obs.counter("serve.fast.completed"),
            m_fast_demoted: obs.counter("serve.fast.demoted"),
            m_slow_submitted: obs.counter("serve.slow.submitted"),
            m_slow_completed: obs.counter("serve.slow.completed"),
            m_slow_failed: obs.counter("serve.slow.failed"),
            m_mydb_rows: obs.counter("serve.mydb.rows"),
            m_mydb_tables: obs.counter("serve.mydb.tables"),
            h_fast_latency: obs.histogram("serve.fast.latency_us"),
            h_fast_modeled: obs.histogram("serve.fast.modeled_us"),
            h_slow_latency: obs.histogram("serve.slow.latency_us"),
            h_slow_queue_wait: obs.histogram("serve.slow.queue_wait_us"),
            backend,
            cfg,
        });
        let workers = (0..inner.cfg.slow_workers.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("serve-slow-{i}"))
                    .spawn(move || slow_worker(&inner))
                    .expect("spawn slow worker")
            })
            .collect();
        QueryService {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.inner.cfg
    }

    /// Execute `query` on the fast queue for `user`.
    ///
    /// Admission can reject ([`ServeError::QuotaExceeded`]) when the user
    /// is already at their concurrent-fast cap. An admitted query runs
    /// synchronously under a fast slot; if its modeled latency overruns
    /// the fast deadline it is demoted: the result is discarded and the
    /// query is resubmitted to the slow queue on the user's behalf.
    pub fn fast_query(&self, user: &str, query: Query) -> Result<FastOutcome, ServeError> {
        let inner = &*self.inner;
        {
            let mut st = inner.state.lock();
            let usage = st.users.entry(user.to_owned()).or_default();
            if usage.fast_inflight >= inner.cfg.fast_per_user {
                drop(st);
                inner.m_fast_rejected.inc();
                return Err(ServeError::QuotaExceeded(format!(
                    "user {user} already has {} fast queries in flight",
                    inner.cfg.fast_per_user
                )));
            }
            usage.fast_inflight += 1;
        }
        inner.m_fast_admitted.inc();

        let result = {
            // Short synchronous queue: block for a slot, run, release.
            let _slot = inner.fast_slots.acquire_guard();
            let wall_start = Instant::now();
            let r = run_backend(&inner.backend, &inner.cfg, &query);
            let wall = wall_start.elapsed();
            r.map(|g| QueryResult {
                rows: g.rows,
                modeled: g.modeled,
                wall,
                partial: g.partial,
                missing_zones: g.missing_zones,
            })
        };

        {
            let mut st = inner.state.lock();
            if let Some(usage) = st.users.get_mut(user) {
                usage.fast_inflight -= 1;
            }
        }

        let result = result.map_err(ServeError::Db)?;
        inner.h_fast_latency.record(result.wall.as_micros() as u64);
        inner
            .h_fast_modeled
            .record(result.modeled.as_micros() as u64);

        if result.modeled > inner.cfg.fast_deadline {
            // CasJobs-style demotion: the interactive answer is withheld
            // and the query reruns as a batch job whose results land in
            // the user's MyDB. A user already at their slow-job quota
            // gets the rejection instead — counted as such, so
            // admitted = completed + demoted + rejected-at-demotion.
            match self.enqueue(user, query) {
                Ok(job) => {
                    inner.m_fast_demoted.inc();
                    return Ok(FastOutcome::Demoted(job));
                }
                Err(e) => {
                    inner.m_fast_rejected.inc();
                    return Err(e);
                }
            }
        }
        inner.m_fast_completed.inc();
        Ok(FastOutcome::Done(result))
    }

    /// Submit `query` to the slow/batch queue for `user`. Returns the job
    /// id; poll with [`QueryService::job_state`] or block with
    /// [`QueryService::wait_job`].
    pub fn submit_slow(&self, user: &str, query: Query) -> Result<JobId, ServeError> {
        self.enqueue(user, query)
    }

    fn enqueue(&self, user: &str, query: Query) -> Result<JobId, ServeError> {
        let inner = &*self.inner;
        let id = JobId(inner.next_job.fetch_add(1, Ordering::Relaxed));
        {
            let mut st = inner.state.lock();
            let usage = st.users.entry(user.to_owned()).or_default();
            if usage.slow_open >= inner.cfg.slow_per_user {
                return Err(ServeError::QuotaExceeded(format!(
                    "user {user} already has {} open slow jobs",
                    inner.cfg.slow_per_user
                )));
            }
            usage.slow_open += 1;
            st.jobs.insert(
                id,
                Job {
                    user: user.to_owned(),
                    query,
                    state: JobState::Submitted,
                    result_table: None,
                    result_rows: 0,
                    submitted_at: Instant::now(),
                },
            );
            st.queue.push_back(id);
        }
        inner.m_slow_submitted.inc();
        inner.job_ready.notify_one();
        Ok(id)
    }

    /// Current state of a job.
    pub fn job_state(&self, job: JobId) -> Option<JobState> {
        self.inner
            .state
            .lock()
            .jobs
            .get(&job)
            .map(|j| j.state.clone())
    }

    /// The MyDB scratch table holding a finished job's results.
    pub fn job_result_table(&self, job: JobId) -> Option<String> {
        self.inner
            .state
            .lock()
            .jobs
            .get(&job)
            .and_then(|j| j.result_table.clone())
    }

    /// Block until `job` reaches a terminal state (`Done` / `Failed`).
    pub fn wait_job(&self, job: JobId) -> Result<JobState, ServeError> {
        let inner = &*self.inner;
        let mut st = inner.state.lock();
        loop {
            match st.jobs.get(&job) {
                None => return Err(ServeError::NoSuchJob(job)),
                Some(j) if matches!(j.state, JobState::Done | JobState::Failed(_)) => {
                    return Ok(j.state.clone());
                }
                Some(_) => inner.job_done.wait(&mut st),
            }
        }
    }

    /// Block until every queued job has reached a terminal state.
    pub fn drain(&self) {
        let inner = &*self.inner;
        let mut st = inner.state.lock();
        while !st.queue.is_empty()
            || st
                .jobs
                .values()
                .any(|j| matches!(j.state, JobState::Submitted | JobState::Running))
        {
            inner.job_done.wait(&mut st);
        }
    }

    /// Rows currently charged against a user's MyDB quota.
    pub fn mydb_rows(&self, user: &str) -> u64 {
        self.inner
            .state
            .lock()
            .users
            .get(user)
            .map_or(0, |u| u.mydb_rows)
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Wake every worker so they observe the flag.
        {
            let _st = self.inner.state.lock();
            self.inner.job_ready.notify_all();
        }
        for h in self.workers.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock();
        f.debug_struct("QueryService")
            .field("queued", &st.queue.len())
            .field("jobs", &st.jobs.len())
            .finish_non_exhaustive()
    }
}

/// Execute one query over a session, returning rows + total modeled
/// latency. Cone searches fan out into one `index_range` per cover range
/// and re-filter candidates by true angular distance.
fn run_query(
    session: &Session,
    cfg: &ServeConfig,
    query: &Query,
) -> DbResult<(Vec<Row>, Duration)> {
    match query {
        Query::Scan { table, filter } => {
            // Season-atomic: resolve-and-scan in one catalog critical
            // section, so a concurrent campaign swap can't slip between
            // the name lookup and the heap read.
            let QueryReply { rows, modeled } = session.query_scan_named(table, filter.clone())?;
            Ok((rows, modeled))
        }
        Query::PkLookup { table, key } => {
            let QueryReply { rows, modeled } = session.query_pk(table, key.clone())?;
            Ok((rows, modeled))
        }
        Query::Cone {
            ra_deg,
            dec_deg,
            radius_arcmin,
        } => {
            let engine = session.server().engine();
            let tid = engine.table_id(&cfg.cone_table)?;
            let schema = engine.schema(tid);
            let ra_col =
                schema
                    .column_index(&cfg.ra_column)
                    .ok_or_else(|| DbError::NoSuchColumn {
                        table: cfg.cone_table.clone(),
                        column: cfg.ra_column.clone(),
                    })?;
            let dec_col =
                schema
                    .column_index(&cfg.dec_column)
                    .ok_or_else(|| DbError::NoSuchColumn {
                        table: cfg.cone_table.clone(),
                        column: cfg.dec_column.clone(),
                    })?;
            let cone = Cone::from_radec_arcmin(*ra_deg, *dec_deg, *radius_arcmin);
            let mut rows = Vec::new();
            let mut modeled = Duration::ZERO;
            for (lo, hi) in cone_key_ranges_at(&cone, cfg.cover_depth, cfg.htm_depth) {
                let reply = session.query_index_range(
                    &cfg.cone_table,
                    &cfg.cone_index,
                    vec![Value::Int(lo)],
                    vec![Value::Int(hi)],
                )?;
                modeled += reply.modeled;
                for row in reply.rows {
                    let (Some(Value::Float(ora)), Some(Value::Float(odec))) =
                        (row.get(ra_col), row.get(dec_col))
                    else {
                        continue;
                    };
                    if separation_deg(*ra_deg, *dec_deg, *ora, *odec) * 60.0 <= *radius_arcmin {
                        rows.push(row);
                    }
                }
            }
            Ok((rows, modeled))
        }
    }
}

/// Execute one query against the backend. A single server runs it on one
/// session; a shard group routes it — zoned scans fan to every zone,
/// point lookups route by id, cones fan to the zones whose declination
/// band intersects the cone — and applies the group's gather policy
/// (per-shard budgets, retries, and the explicit partial-result flag).
fn run_backend(backend: &Backend, cfg: &ServeConfig, query: &Query) -> DbResult<GatherResult> {
    match backend {
        Backend::Single(server) => {
            let session = server.connect();
            let (rows, modeled) = run_query(&session, cfg, query)?;
            Ok(GatherResult {
                rows,
                modeled,
                partial: false,
                missing_zones: Vec::new(),
            })
        }
        Backend::Sharded(group) => match query {
            Query::Scan { table, filter } => group.scan(table, filter.clone()),
            Query::PkLookup { table, key } => group.pk_lookup(table, key.clone()),
            Query::Cone {
                dec_deg,
                radius_arcmin,
                ..
            } => {
                // Only the zones whose declination band intersects the
                // cone are asked — the zone map is the pruning index.
                let r_deg = radius_arcmin / 60.0;
                let zones = if group.is_zoned(&cfg.cone_table) {
                    group.map().covering_zones(dec_deg - r_deg, dec_deg + r_deg)
                } else {
                    vec![0]
                };
                group.gather(&zones, |session, _| run_query(session, cfg, query))
            }
        },
    }
}

/// The source table a query's result schema derives from.
fn source_table<'a>(cfg: &'a ServeConfig, query: &'a Query) -> &'a str {
    match query {
        Query::Scan { table, .. } | Query::PkLookup { table, .. } => table,
        Query::Cone { .. } => &cfg.cone_table,
    }
}

/// MyDB scratch-table name for a user's job. User names are sanitized so
/// arbitrary strings cannot mangle the catalog namespace.
fn mydb_table_name(user: &str, job: JobId) -> String {
    let safe: String = user
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("mydb_{safe}_{job}")
}

fn slow_worker(inner: &ServeInner) {
    loop {
        let (id, job_user, query, submitted_at) = {
            let mut st = inner.state.lock();
            loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(id) = st.queue.pop_front() {
                    let job = st.jobs.get_mut(&id).expect("queued job exists");
                    job.state = JobState::Running;
                    break (id, job.user.clone(), job.query.clone(), job.submitted_at);
                }
                inner.job_ready.wait(&mut st);
            }
        };
        inner
            .h_slow_queue_wait
            .record(submitted_at.elapsed().as_micros() as u64);

        let run_start = Instant::now();
        let outcome = execute_slow_job(inner, id, &job_user, &query);
        inner
            .h_slow_latency
            .record(run_start.elapsed().as_micros() as u64);

        let mut st = inner.state.lock();
        if let Some(u) = st.users.get_mut(&job_user) {
            u.slow_open -= 1;
        }
        let job = st.jobs.get_mut(&id).expect("running job exists");
        match outcome {
            Ok((table, rows)) => {
                job.state = JobState::Done;
                job.result_table = Some(table);
                job.result_rows = rows;
                if let Some(u) = st.users.get_mut(&job_user) {
                    u.mydb_rows += rows;
                }
                inner.m_slow_completed.inc();
            }
            Err(e) => {
                job.state = JobState::Failed(e.to_string());
                inner.m_slow_failed.inc();
            }
        }
        drop(st);
        inner.job_done.notify_all();
    }
}

/// Run a slow job end-to-end: execute the query, enforce the MyDB quota,
/// create the scratch table, and materialize the rows.
fn execute_slow_job(
    inner: &ServeInner,
    id: JobId,
    user: &str,
    query: &Query,
) -> Result<(String, u64), ServeError> {
    let result = run_backend(&inner.backend, &inner.cfg, query).map_err(ServeError::Db)?;
    if result.partial {
        // A batch job materializes results the user queries later, long
        // after the degraded window is forgotten — so a partial answer
        // fails loudly instead of being silently enshrined in MyDB.
        return Err(ServeError::Db(DbError::ServerDown(format!(
            "partial result: zones {:?} unavailable during execution",
            result.missing_zones
        ))));
    }
    let rows = result.rows;

    let n = rows.len() as u64;
    {
        let st = inner.state.lock();
        let used = st.users.get(user).map_or(0, |u| u.mydb_rows);
        if used + n > inner.cfg.mydb_row_quota {
            return Err(ServeError::QuotaExceeded(format!(
                "materializing {n} rows would exceed user {user}'s MyDB quota \
                 ({used}/{} used)",
                inner.cfg.mydb_row_quota
            )));
        }
    }

    // Scratch table: same columns and primary key as the source, no FKs,
    // checks, or uniques — MyDB holds result sets, not curated catalog.
    let home = inner.backend.home();
    let engine = home.engine();
    let src_id = engine
        .table_id(source_table(&inner.cfg, query))
        .map_err(ServeError::Db)?;
    let src = engine.schema(src_id);
    let table_name = mydb_table_name(user, id);
    let scratch = TableSchema {
        name: table_name.clone(),
        columns: src.columns.clone(),
        primary_key: src.primary_key.clone(),
        foreign_keys: Vec::new(),
        uniques: Vec::new(),
        checks: Vec::new(),
    };
    engine.create_table(scratch).map_err(ServeError::Db)?;
    inner.m_mydb_tables.inc();

    if !rows.is_empty() {
        let writer = home.connect();
        let stmt = writer.prepare_insert(&table_name).map_err(ServeError::Db)?;
        let out = writer.execute_batch(&stmt, &rows).map_err(ServeError::Db)?;
        if let Some((offset, e)) = out.failed {
            let _ = writer.rollback();
            return Err(ServeError::Db(DbError::Batch {
                offset,
                cause: Box::new(e),
            }));
        }
        writer.commit().map_err(ServeError::Db)?;
    }
    inner.m_mydb_rows.add(n);
    Ok((table_name, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DbConfig;
    use crate::expr::CmpOp;
    use crate::schema::TableBuilder;
    use crate::value::DataType;
    use skyhtm::htmid;

    /// A server with a tiny "objects"-shaped catalog: id, ra, dec, htmid.
    fn star_server(points: &[(i64, f64, f64)]) -> Arc<Server> {
        let s = Server::start(DbConfig::test());
        let t = TableBuilder::new("objects")
            .col("object_id", DataType::Int)
            .col("ra", DataType::Float)
            .col("dec", DataType::Float)
            .col("htmid", DataType::Int)
            .pk(&["object_id"])
            .build()
            .unwrap();
        s.engine().create_table(t).unwrap();
        s.engine()
            .create_index("objects", "idx_objects_htmid", &["htmid"], false)
            .unwrap();
        let sess = s.connect();
        let stmt = sess.prepare_insert("objects").unwrap();
        for (id, ra, dec) in points {
            sess.execute(
                &stmt,
                vec![
                    Value::Int(*id),
                    Value::Float(*ra),
                    Value::Float(*dec),
                    Value::Int(htmid(*ra, *dec, CATALOG_DEPTH) as i64),
                ],
            )
            .unwrap();
        }
        sess.commit().unwrap();
        s
    }

    fn stars_near(ra: f64, dec: f64, n: i64) -> Vec<(i64, f64, f64)> {
        (0..n)
            .map(|i| {
                let ang = i as f64 * 0.7;
                let r = 0.02 * (i % 7) as f64;
                (i, ra + ang.cos() * r, dec + ang.sin() * r)
            })
            .collect()
    }

    fn cfg() -> ServeConfig {
        ServeConfig {
            ra_column: "ra".into(),
            dec_column: "dec".into(),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn fast_cone_matches_brute_force() {
        let stars = stars_near(150.0, 10.0, 40);
        let s = star_server(&stars);
        let svc = QueryService::start(s.clone(), cfg());
        let out = svc
            .fast_query(
                "alice",
                Query::Cone {
                    ra_deg: 150.0,
                    dec_deg: 10.0,
                    radius_arcmin: 5.0,
                },
            )
            .unwrap();
        let FastOutcome::Done(res) = out else {
            panic!("test config should not demote")
        };
        let mut got: Vec<i64> = res.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        got.sort_unstable();
        let mut want: Vec<i64> = stars
            .iter()
            .filter(|(_, ra, dec)| separation_deg(150.0, 10.0, *ra, *dec) * 60.0 <= 5.0)
            .map(|(id, _, _)| *id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!got.is_empty(), "cone should catch the cluster core");
        assert!(s.obs().snapshot().counter("serve.fast.admitted") >= 1);
        assert!(s.obs().snapshot().counter("serve.fast.completed") >= 1);
    }

    #[test]
    fn slow_job_materializes_into_mydb() {
        let s = star_server(&stars_near(150.0, 10.0, 25));
        let svc = QueryService::start(s.clone(), cfg());
        let job = svc
            .submit_slow(
                "bob",
                Query::Scan {
                    table: "objects".into(),
                    filter: Some(Expr::cmp(0, CmpOp::Lt, 10i64)),
                },
            )
            .unwrap();
        assert_eq!(svc.wait_job(job).unwrap(), JobState::Done);
        let table = svc.job_result_table(job).unwrap();
        assert!(table.starts_with("mydb_bob_"), "got {table}");
        let tid = s.engine().table_id(&table).unwrap();
        assert_eq!(s.engine().row_count(tid), 10);
        assert_eq!(svc.mydb_rows("bob"), 10);
        let snap = s.obs().snapshot();
        assert_eq!(snap.counter("serve.slow.completed"), 1);
        assert_eq!(snap.counter("serve.mydb.tables"), 1);
        assert_eq!(snap.counter("serve.mydb.rows"), 10);
        // The MyDB table is itself queryable through the fast queue.
        let FastOutcome::Done(res) = svc
            .fast_query(
                "bob",
                Query::Scan {
                    table,
                    filter: None,
                },
            )
            .unwrap()
        else {
            panic!("demoted")
        };
        assert_eq!(res.rows.len(), 10);
    }

    #[test]
    fn deadline_demotes_to_slow_queue() {
        // Give queries a real modeled cost and set the deadline below it.
        let db = DbConfig {
            per_call_cpu: Duration::from_millis(2),
            ..DbConfig::test()
        };
        let s = Server::start(db);
        let t = TableBuilder::new("objects")
            .col("object_id", DataType::Int)
            .col("ra", DataType::Float)
            .col("dec", DataType::Float)
            .col("htmid", DataType::Int)
            .pk(&["object_id"])
            .build()
            .unwrap();
        s.engine().create_table(t).unwrap();
        let sess = s.connect();
        let stmt = sess.prepare_insert("objects").unwrap();
        sess.execute(
            &stmt,
            vec![
                Value::Int(1),
                Value::Float(10.0),
                Value::Float(10.0),
                Value::Int(0),
            ],
        )
        .unwrap();
        sess.commit().unwrap();
        let svc = QueryService::start(
            s.clone(),
            cfg().with_fast_deadline(Duration::from_micros(100)),
        );
        let out = svc
            .fast_query(
                "carol",
                Query::Scan {
                    table: "objects".into(),
                    filter: None,
                },
            )
            .unwrap();
        let FastOutcome::Demoted(job) = out else {
            panic!("modeled 2ms call must overrun a 100µs deadline")
        };
        assert_eq!(svc.wait_job(job).unwrap(), JobState::Done);
        let snap = s.obs().snapshot();
        assert_eq!(snap.counter("serve.fast.demoted"), 1);
        assert_eq!(snap.counter("serve.fast.completed"), 0);
        assert_eq!(snap.counter("serve.slow.completed"), 1);
        assert!(svc.job_result_table(job).is_some());
    }

    #[test]
    fn fast_quota_rejects_but_slow_queue_accepts() {
        let s = star_server(&stars_near(150.0, 10.0, 5));
        // Zero concurrent fast queries allowed: every fast attempt bounces.
        let svc = QueryService::start(s.clone(), cfg().with_fast_per_user(0));
        let err = svc
            .fast_query(
                "dave",
                Query::PkLookup {
                    table: "objects".into(),
                    key: vec![Value::Int(1)],
                },
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::QuotaExceeded(_)));
        assert_eq!(s.obs().snapshot().counter("serve.fast.rejected"), 1);
        // The slow queue still serves them.
        let job = svc
            .submit_slow(
                "dave",
                Query::PkLookup {
                    table: "objects".into(),
                    key: vec![Value::Int(1)],
                },
            )
            .unwrap();
        assert_eq!(svc.wait_job(job).unwrap(), JobState::Done);
    }

    #[test]
    fn mydb_quota_fails_oversized_jobs() {
        let s = star_server(&stars_near(150.0, 10.0, 30));
        let svc = QueryService::start(s.clone(), cfg().with_mydb_row_quota(12));
        let ok = svc
            .submit_slow(
                "erin",
                Query::Scan {
                    table: "objects".into(),
                    filter: Some(Expr::cmp(0, CmpOp::Lt, 10i64)),
                },
            )
            .unwrap();
        assert_eq!(svc.wait_job(ok).unwrap(), JobState::Done);
        // Second job would need 30 rows against the 2 remaining.
        let too_big = svc
            .submit_slow(
                "erin",
                Query::Scan {
                    table: "objects".into(),
                    filter: None,
                },
            )
            .unwrap();
        let JobState::Failed(msg) = svc.wait_job(too_big).unwrap() else {
            panic!("oversized job must fail")
        };
        assert!(msg.contains("quota"), "got {msg}");
        assert_eq!(svc.mydb_rows("erin"), 10, "failed job charges nothing");
        assert_eq!(s.obs().snapshot().counter("serve.slow.failed"), 1);
    }

    #[test]
    fn slow_per_user_quota_bounds_open_jobs() {
        let s = star_server(&stars_near(150.0, 10.0, 3));
        let svc = QueryService::start(s.clone(), cfg().with_slow_per_user(1).with_slow_workers(1));
        // Stall the single worker with a first job, then overfill.
        let q = || Query::Scan {
            table: "objects".into(),
            filter: None,
        };
        let j1 = svc.submit_slow("frank", q()).unwrap();
        // Either j1 is still open (quota hit) or it already finished
        // (quota frees) — both are legal; what's illegal is exceeding the
        // cap while j1 is open. Drive to a deterministic point first:
        svc.wait_job(j1).unwrap();
        let j2 = svc.submit_slow("frank", q()).unwrap();
        svc.wait_job(j2).unwrap();
        assert_eq!(s.obs().snapshot().counter("serve.slow.completed"), 2);
    }

    #[test]
    fn histograms_carry_latency_percentiles() {
        let s = star_server(&stars_near(150.0, 10.0, 20));
        let svc = QueryService::start(s.clone(), cfg());
        for i in 0..20 {
            svc.fast_query(
                "grace",
                Query::PkLookup {
                    table: "objects".into(),
                    key: vec![Value::Int(i)],
                },
            )
            .unwrap();
        }
        let h = s.obs().histogram("serve.fast.latency_us");
        assert_eq!(h.count(), 20);
        assert!(h.quantile(0.99) >= h.quantile(0.5));
        assert!(h.quantile(0.99) > 0, "wall latency p99 must be nonzero");
    }

    #[test]
    fn jobs_progress_through_states() {
        let s = star_server(&stars_near(150.0, 10.0, 4));
        let svc = QueryService::start(s.clone(), cfg());
        let job = svc
            .submit_slow(
                "heidi",
                Query::Scan {
                    table: "objects".into(),
                    filter: None,
                },
            )
            .unwrap();
        // Whatever instant we sample, the state is one of the lifecycle
        // states, and the terminal state is Done.
        let st = svc.job_state(job).unwrap();
        assert!(matches!(
            st,
            JobState::Submitted | JobState::Running | JobState::Done
        ));
        assert_eq!(svc.wait_job(job).unwrap(), JobState::Done);
        assert_eq!(svc.job_state(job), Some(JobState::Done));
        assert!(matches!(
            svc.wait_job(JobId(999)).unwrap_err(),
            ServeError::NoSuchJob(_)
        ));
    }

    #[test]
    fn drain_waits_for_queue_to_empty() {
        let s = star_server(&stars_near(150.0, 10.0, 10));
        let svc = QueryService::start(s.clone(), cfg());
        for _ in 0..6 {
            svc.submit_slow(
                "ivan",
                Query::Cone {
                    ra_deg: 150.0,
                    dec_deg: 10.0,
                    radius_arcmin: 10.0,
                },
            )
            .unwrap();
        }
        svc.drain();
        let snap = s.obs().snapshot();
        assert_eq!(
            snap.counter("serve.slow.completed") + snap.counter("serve.slow.failed"),
            6
        );
    }

    #[test]
    fn sharded_backend_serves_scans_cones_and_degraded_reads() {
        use crate::shard::{GatherPolicy, ShardGroup, ZoneMap};

        // Stars straddle dec 10 ± 0.15; shard the band at dec = 10.
        let stars = stars_near(150.0, 10.0, 40);
        let map = ZoneMap::band(2, 9.0, 11.0);
        let by_zone: Vec<Vec<(i64, f64, f64)>> = (0..2)
            .map(|z| {
                stars
                    .iter()
                    .copied()
                    .filter(|(_, _, dec)| map.zone_for_dec(*dec) == z)
                    .collect()
            })
            .collect();
        assert!(
            by_zone.iter().all(|v| !v.is_empty()),
            "test cluster must straddle the zone boundary"
        );
        let servers: Vec<Arc<Server>> = by_zone.iter().map(|v| star_server(v)).collect();
        let obs = skyobs::Registry::new();
        let group = Arc::new(ShardGroup::new(
            map,
            servers,
            &["objects"],
            GatherPolicy::default()
                .with_attempts(2)
                .with_allow_partial(true),
            &obs,
        ));
        let svc = QueryService::start_sharded(group.clone(), cfg(), &obs);

        // Scatter-gather scan sees the union of both zones.
        let FastOutcome::Done(res) = svc
            .fast_query(
                "alice",
                Query::Scan {
                    table: "objects".into(),
                    filter: None,
                },
            )
            .unwrap()
        else {
            panic!("demoted")
        };
        assert!(!res.partial);
        assert_eq!(res.rows.len(), stars.len());

        // Cone fans only to covering zones and matches brute force.
        let FastOutcome::Done(res) = svc
            .fast_query(
                "alice",
                Query::Cone {
                    ra_deg: 150.0,
                    dec_deg: 10.0,
                    radius_arcmin: 5.0,
                },
            )
            .unwrap()
        else {
            panic!("demoted")
        };
        let mut got: Vec<i64> = res.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        got.sort_unstable();
        let mut want: Vec<i64> = stars
            .iter()
            .filter(|(_, ra, dec)| separation_deg(150.0, 10.0, *ra, *dec) * 60.0 <= 5.0)
            .map(|(id, _, _)| *id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);

        // Point lookup routes (or broadcasts) to the owning zone.
        let FastOutcome::Done(res) = svc
            .fast_query(
                "alice",
                Query::PkLookup {
                    table: "objects".into(),
                    key: vec![Value::Int(stars[3].0)],
                },
            )
            .unwrap()
        else {
            panic!("demoted")
        };
        assert_eq!(res.rows.len(), 1);

        // Kill zone 1: scans degrade to an explicitly partial answer.
        group.server(1).crash();
        let FastOutcome::Done(res) = svc
            .fast_query(
                "alice",
                Query::Scan {
                    table: "objects".into(),
                    filter: None,
                },
            )
            .unwrap()
        else {
            panic!("demoted")
        };
        assert!(res.partial, "degraded read must carry the partial flag");
        assert_eq!(res.missing_zones, vec![1]);
        assert_eq!(res.rows.len(), by_zone[0].len());

        // A slow job refuses to enshrine a partial answer in MyDB.
        let job = svc
            .submit_slow(
                "alice",
                Query::Scan {
                    table: "objects".into(),
                    filter: None,
                },
            )
            .unwrap();
        let JobState::Failed(msg) = svc.wait_job(job).unwrap() else {
            panic!("partial slow job must fail loudly")
        };
        assert!(msg.contains("partial"), "got {msg}");
    }

    #[test]
    fn scans_never_see_a_torn_season_across_swap() {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

        // Live season: 5 stars. Shadow season loaded behind it: 9 stars.
        // Counts differ, so every scan result identifies its season.
        let s = star_server(&stars_near(150.0, 10.0, 5));
        let shadow = TableBuilder::new("objects__c1")
            .col("object_id", DataType::Int)
            .col("ra", DataType::Float)
            .col("dec", DataType::Float)
            .col("htmid", DataType::Int)
            .pk(&["object_id"])
            .build()
            .unwrap();
        s.engine().create_table(shadow).unwrap();
        let sess = s.connect();
        let stmt = sess.prepare_insert("objects__c1").unwrap();
        for (id, ra, dec) in stars_near(150.0, 10.0, 9) {
            sess.execute(
                &stmt,
                vec![
                    Value::Int(id),
                    Value::Float(ra),
                    Value::Float(dec),
                    Value::Int(htmid(ra, dec, CATALOG_DEPTH) as i64),
                ],
            )
            .unwrap();
        }
        sess.commit().unwrap();

        let svc = Arc::new(QueryService::start(s.clone(), cfg()));
        let stop = Arc::new(AtomicBool::new(false));
        let torn = Arc::new(AtomicU64::new(0));
        let reads = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..3)
            .map(|r| {
                let (svc, stop, torn, reads) =
                    (svc.clone(), stop.clone(), torn.clone(), reads.clone());
                std::thread::spawn(move || {
                    let user = format!("reader{r}");
                    while !stop.load(Ordering::Relaxed) {
                        match svc.fast_query(
                            &user,
                            Query::Scan {
                                table: "objects".into(),
                                filter: None,
                            },
                        ) {
                            Ok(FastOutcome::Done(res)) => {
                                reads.fetch_add(1, Ordering::Relaxed);
                                let n = res.rows.len();
                                if n != 5 && n != 9 {
                                    torn.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Ok(FastOutcome::Demoted(_)) => {}
                            // Transient admission rejections are fine;
                            // only season tearing fails the test.
                            Err(_) => {}
                        }
                    }
                })
            })
            .collect();

        // Promote the shadow mid-traffic, then purge the demoted season
        // — the moment a torn read could happen if the swap were not
        // atomic to named scans.
        std::thread::sleep(std::time::Duration::from_millis(15));
        s.engine()
            .swap_tables(&[("objects".into(), "objects__c1".into())])
            .unwrap();
        let engine = s.engine();
        let txn = engine.begin();
        let demoted = engine.table_id("objects__c1").unwrap();
        engine.delete_where(txn, demoted, None).unwrap();
        engine.commit(txn).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(15));

        stop.store(true, Ordering::Relaxed);
        for h in readers {
            h.join().unwrap();
        }
        assert_eq!(torn.load(Ordering::Relaxed), 0, "a scan saw a torn season");
        assert!(reads.load(Ordering::Relaxed) > 0, "no reads completed");
        // Post-swap, the live name serves the new season.
        match svc
            .fast_query(
                "final",
                Query::Scan {
                    table: "objects".into(),
                    filter: None,
                },
            )
            .unwrap()
        {
            FastOutcome::Done(res) => assert_eq!(res.rows.len(), 9),
            FastOutcome::Demoted(_) => panic!("zero-cost scan demoted"),
        }
    }
}
