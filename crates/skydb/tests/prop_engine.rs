//! Property tests for engine-level semantics the loader depends on:
//! JDBC batch behaviour, insert atomicity, and rollback.

use proptest::prelude::*;

use skydb::engine::Engine;
use skydb::error::ConstraintKind;
use skydb::schema::TableBuilder;
use skydb::value::{DataType, Row, Value};

fn engine_with_parent() -> (Engine, skydb::schema::TableId, skydb::schema::TableId) {
    let e = Engine::for_tests();
    let frames = TableBuilder::new("frames")
        .col("frame_id", DataType::Int)
        .pk(&["frame_id"])
        .build()
        .unwrap();
    let objects = TableBuilder::new("objects")
        .col("object_id", DataType::Int)
        .col("frame_id", DataType::Int)
        .pk(&["object_id"])
        .fk("fk_frame", &["frame_id"], "frames")
        .build()
        .unwrap();
    let f = e.create_table(frames).unwrap();
    let o = e.create_table(objects).unwrap();
    let txn = e.begin();
    e.insert_row(txn, f, &[Value::Int(1)]).unwrap();
    e.commit(txn).unwrap();
    (e, f, o)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// JDBC semantics: for ANY pattern of good/bad rows, a batch applies
    /// exactly the prefix before the first bad row, and reports its offset.
    #[test]
    fn batch_applies_exact_prefix(pattern in prop::collection::vec(any::<bool>(), 1..60)) {
        let (e, _, o) = engine_with_parent();
        let txn = e.begin();
        let rows: Vec<Row> = pattern
            .iter()
            .enumerate()
            .map(|(i, &good)| {
                let frame = if good { 1 } else { 999 }; // bad rows violate FK
                vec![Value::Int(i as i64), Value::Int(frame)]
            })
            .collect();
        let out = e.apply_batch(txn, o, &rows);
        let first_bad = pattern.iter().position(|&g| !g);
        match first_bad {
            None => {
                prop_assert!(out.failed.is_none());
                prop_assert_eq!(out.applied, rows.len());
            }
            Some(idx) => {
                let (off, err) = out.failed.clone().unwrap();
                prop_assert_eq!(off, idx);
                prop_assert_eq!(out.applied, idx);
                prop_assert_eq!(err.constraint_kind(), Some(ConstraintKind::ForeignKey));
            }
        }
        prop_assert_eq!(e.row_count(o), out.applied as u64);
        e.commit(txn).unwrap();
    }

    /// A failed insert leaves no residue: heap, PK index and scans all
    /// agree, and the PK value remains available.
    #[test]
    fn failed_inserts_are_atomic(ids in prop::collection::vec(0i64..30, 1..80)) {
        let (e, _, o) = engine_with_parent();
        let txn = e.begin();
        let mut expected = std::collections::HashSet::new();
        for id in &ids {
            let row = vec![Value::Int(*id), Value::Int(1)];
            let r = e.insert_row(txn, o, &row);
            prop_assert_eq!(r.is_ok(), expected.insert(*id), "id {}", id);
        }
        prop_assert_eq!(e.row_count(o), expected.len() as u64);
        prop_assert_eq!(
            e.scan_where(o, None).unwrap().len(),
            expected.len()
        );
        e.commit(txn).unwrap();
    }

    /// Rollback after arbitrary interleaved inserts restores exactly the
    /// committed state.
    #[test]
    fn rollback_restores_committed_state(first in prop::collection::btree_set(0i64..50, 0..25),
                                         second in prop::collection::btree_set(50i64..100, 0..25)) {
        let (e, _, o) = engine_with_parent();
        let t1 = e.begin();
        for id in &first {
            e.insert_row(t1, o, &[Value::Int(*id), Value::Int(1)]).unwrap();
        }
        e.commit(t1).unwrap();

        let t2 = e.begin();
        for id in &second {
            e.insert_row(t2, o, &[Value::Int(*id), Value::Int(1)]).unwrap();
        }
        e.rollback(t2).unwrap();

        prop_assert_eq!(e.row_count(o), first.len() as u64);
        // Every rolled-back PK is reusable.
        let t3 = e.begin();
        for id in &second {
            e.insert_row(t3, o, &[Value::Int(*id), Value::Int(1)]).unwrap();
        }
        e.commit(t3).unwrap();
        prop_assert_eq!(e.row_count(o), (first.len() + second.len()) as u64);
    }

    /// The WAL round-trips any committed workload: recovery rebuilds the
    /// same row counts.
    #[test]
    fn recovery_reproduces_committed_rows(ids in prop::collection::btree_set(0i64..200, 1..60),
                                          uncommitted in prop::collection::btree_set(200i64..300, 0..20)) {
        let (e, _, o) = engine_with_parent();
        let t1 = e.begin();
        for id in &ids {
            e.insert_row(t1, o, &[Value::Int(*id), Value::Int(1)]).unwrap();
        }
        e.commit(t1).unwrap();
        let t2 = e.begin();
        for id in &uncommitted {
            e.insert_row(t2, o, &[Value::Int(*id), Value::Int(1)]).unwrap();
        }
        // crash without commit
        let log = e.durable_log();
        drop(e);

        let schemas = vec![
            TableBuilder::new("frames")
                .col("frame_id", DataType::Int)
                .pk(&["frame_id"])
                .build()
                .unwrap(),
            TableBuilder::new("objects")
                .col("object_id", DataType::Int)
                .col("frame_id", DataType::Int)
                .pk(&["object_id"])
                .fk("fk_frame", &["frame_id"], "frames")
                .build()
                .unwrap(),
        ];
        let recovered = Engine::recover_from_log(skydb::DbConfig::test(), schemas, &log).unwrap();
        let o2 = recovered.table_id("objects").unwrap();
        prop_assert_eq!(recovered.row_count(o2), ids.len() as u64);
    }
}
