//! Property tests for the expression language: SQL three-valued-logic laws
//! hold for arbitrary expressions over arbitrary rows, and evaluation
//! never panics.

use proptest::prelude::*;

use skydb::expr::{CmpOp, Expr, Truth};
use skydb::value::Value;

const ROW_WIDTH: usize = 6;

fn leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0..ROW_WIDTH).prop_map(Expr::Column),
        any::<i64>().prop_map(|v| Expr::Literal(Value::Int(v))),
        any::<f64>().prop_map(|v| Expr::Literal(Value::Float(v))),
        Just(Expr::Literal(Value::Null)),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(vec![
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ])
}

/// A small boolean expression tree (comparisons combined with AND/OR/NOT).
fn bool_expr() -> impl Strategy<Value = Expr> {
    let cmp =
        (cmp_op(), leaf(), leaf()).prop_map(|(op, a, b)| Expr::Cmp(op, Box::new(a), Box::new(b)));
    cmp.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| Expr::Not(Box::new(a))),
        ]
    })
}

fn row() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(
        prop_oneof![
            Just(Value::Null),
            any::<i64>().prop_map(Value::Int),
            (-1000.0f64..1000.0).prop_map(Value::Float),
        ],
        ROW_WIDTH,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Evaluation never panics; it either produces a Truth or a clean error.
    #[test]
    fn eval_never_panics(e in bool_expr(), r in row()) {
        let _ = e.eval_truth(&r);
        let _ = e.eval(&r);
    }

    /// Double negation is the identity in three-valued logic.
    #[test]
    fn not_not_is_identity(e in bool_expr(), r in row()) {
        let plain = e.eval_truth(&r);
        let doubled = Expr::Not(Box::new(Expr::Not(Box::new(e)))).eval_truth(&r);
        prop_assert_eq!(plain.is_ok(), doubled.is_ok());
        if let (Ok(a), Ok(b)) = (plain, doubled) {
            prop_assert_eq!(a, b);
        }
    }

    /// De Morgan: NOT (a AND b) == (NOT a) OR (NOT b), in 3VL.
    #[test]
    fn de_morgan_holds(a in bool_expr(), b in bool_expr(), r in row()) {
        let lhs = Expr::Not(Box::new(a.clone().and(b.clone()))).eval_truth(&r);
        let rhs = Expr::Not(Box::new(a)).or(Expr::Not(Box::new(b))).eval_truth(&r);
        if let (Ok(x), Ok(y)) = (lhs, rhs) {
            prop_assert_eq!(x, y);
        }
    }

    /// AND and OR are commutative.
    #[test]
    fn and_or_commute(a in bool_expr(), b in bool_expr(), r in row()) {
        let ab = a.clone().and(b.clone()).eval_truth(&r);
        let ba = b.clone().and(a.clone()).eval_truth(&r);
        if let (Ok(x), Ok(y)) = (ab, ba) {
            prop_assert_eq!(x, y);
        }
        let ab = a.clone().or(b.clone()).eval_truth(&r);
        let ba = b.or(a).eval_truth(&r);
        if let (Ok(x), Ok(y)) = (ab, ba) {
            prop_assert_eq!(x, y);
        }
    }

    /// BETWEEN is exactly (x >= lo) AND (x <= hi).
    #[test]
    fn between_equals_conjunction(x in leaf(), lo in leaf(), hi in leaf(), r in row()) {
        let between = Expr::Between(Box::new(x.clone()), Box::new(lo.clone()), Box::new(hi.clone()))
            .eval_truth(&r);
        let conj = Expr::Cmp(CmpOp::Ge, Box::new(x.clone()), Box::new(lo))
            .and(Expr::Cmp(CmpOp::Le, Box::new(x), Box::new(hi)))
            .eval_truth(&r);
        if let (Ok(a), Ok(b)) = (between, conj) {
            prop_assert_eq!(a, b);
        }
    }

    /// Comparing anything to NULL is Unknown; CHECK passes, WHERE rejects.
    #[test]
    fn null_comparisons_are_unknown(op in cmp_op(), v in leaf(), r in row()) {
        let e = Expr::Cmp(op, Box::new(v), Box::new(Expr::Literal(Value::Null)));
        if let Ok(t) = e.eval_truth(&r) {
            prop_assert_eq!(t, Truth::Unknown);
            prop_assert!(t.passes_check());
            prop_assert!(!t.selects());
        }
    }

    /// x = x is True for any non-NULL column value.
    #[test]
    fn self_equality(col in 0..ROW_WIDTH, r in row()) {
        let e = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Column(col)),
            Box::new(Expr::Column(col)),
        );
        let t = e.eval_truth(&r).unwrap();
        if r[col].is_null() {
            prop_assert_eq!(t, Truth::Unknown);
        } else {
            prop_assert_eq!(t, Truth::True);
        }
    }

    /// AND with False is False, OR with True is True — even when the other
    /// side is Unknown (the SQL short-circuit identities).
    #[test]
    fn absorbing_elements(e in bool_expr(), r in row()) {
        let f = Expr::Cmp(
            CmpOp::Ne,
            Box::new(Expr::Literal(Value::Int(1))),
            Box::new(Expr::Literal(Value::Int(1))),
        ); // False
        let t = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Literal(Value::Int(1))),
            Box::new(Expr::Literal(Value::Int(1))),
        ); // True
        if let Ok(x) = e.clone().and(f).eval_truth(&r) {
            prop_assert_eq!(x, Truth::False);
        }
        if let Ok(x) = e.or(t).eval_truth(&r) {
            prop_assert_eq!(x, Truth::True);
        }
    }
}
