//! Property tests for value encoding and ordering: the wire/page/WAL row
//! format must round-trip arbitrary values, and key comparison must be a
//! total order (the B+-tree depends on it).

use proptest::prelude::*;

use bytes::BytesMut;
use skydb::value::{decode_row, encode_row, row_encoded_len, Key, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        1 => Just(Value::Null),
        4 => any::<i64>().prop_map(Value::Int),
        4 => any::<f64>().prop_map(Value::Float), // includes NaN/±inf
        3 => "[a-zA-Z0-9 _.|-]{0,40}".prop_map(Value::Text),
        2 => any::<i64>().prop_map(Value::Timestamp),
        1 => any::<bool>().prop_map(Value::Bool),
    ]
}

fn row_strategy() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(value_strategy(), 0..24)
}

/// Bitwise value equality (NaN == NaN), since PartialEq on f64 loses NaN.
fn bit_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rows_roundtrip_bytewise(row in row_strategy()) {
        let mut buf = BytesMut::new();
        encode_row(&row, &mut buf);
        prop_assert_eq!(buf.len(), row_encoded_len(&row));
        let mut rd = buf.freeze();
        let back = decode_row(&mut rd).unwrap();
        prop_assert_eq!(back.len(), row.len());
        for (a, b) in row.iter().zip(back.iter()) {
            prop_assert!(bit_eq(a, b), "{:?} != {:?}", a, b);
        }
        prop_assert_eq!(rd.len(), 0, "trailing bytes after decode");
    }

    #[test]
    fn truncated_rows_error_never_panic(row in row_strategy(), cut_frac in 0.0f64..1.0) {
        let mut buf = BytesMut::new();
        encode_row(&row, &mut buf);
        let full = buf.freeze();
        let cut = ((full.len() as f64) * cut_frac) as usize;
        if cut < full.len() {
            let mut partial = full.slice(0..cut);
            // Either a clean protocol error, or (when the cut lands after a
            // complete prefix of values but mid-row) an error as well —
            // decode_row demands the declared column count.
            prop_assert!(decode_row(&mut partial).is_err());
        }
    }

    /// cmp_sql is a total order: antisymmetric, transitive on samples, and
    /// consistent between Key and Value comparison.
    #[test]
    fn key_ordering_is_total(a in value_strategy(), b in value_strategy(), c in value_strategy()) {
        use std::cmp::Ordering;
        let (ka, kb, kc) = (
            Key(vec![a.clone()]),
            Key(vec![b.clone()]),
            Key(vec![c.clone()]),
        );
        // Reflexive.
        prop_assert_eq!(ka.cmp(&ka), Ordering::Equal);
        // Antisymmetric.
        prop_assert_eq!(ka.cmp(&kb), kb.cmp(&ka).reverse());
        // Transitive.
        if ka.cmp(&kb) != Ordering::Greater && kb.cmp(&kc) != Ordering::Greater {
            prop_assert_ne!(ka.cmp(&kc), Ordering::Greater);
        }
        // Consistent with the underlying value comparison.
        prop_assert_eq!(ka.cmp(&kb), a.cmp_sql(&b));
    }

    #[test]
    fn key_width_matches_encoded_len(row in row_strategy()) {
        let key = Key(row.clone());
        let expect: usize = row.iter().map(Value::encoded_len).sum();
        prop_assert_eq!(key.width(), expect);
    }

    #[test]
    fn sorting_keys_never_panics(mut keys in prop::collection::vec(row_strategy(), 0..50)) {
        let mut ks: Vec<Key> = keys.drain(..).map(Key).collect();
        ks.sort(); // would panic if Ord were inconsistent
        for w in ks.windows(2) {
            prop_assert_ne!(w[0].cmp(&w[1]), std::cmp::Ordering::Greater);
        }
    }
}
