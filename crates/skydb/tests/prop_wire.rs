//! Fuzz-style property tests for every decoder in the system: arbitrary
//! byte soup must produce clean errors, never panics, and valid frames
//! must round-trip.

use proptest::prelude::*;

use bytes::BytesMut;
use skydb::schema::TableId;
use skydb::value::{Row, Value};
use skydb::wal::decode_log;
use skydb::wire::{Request, Response};

fn small_row() -> impl Strategy<Value = Row> {
    prop::collection::vec(
        prop_oneof![
            Just(Value::Null),
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Float),
            "[ -~]{0,16}".prop_map(Value::Text),
            any::<bool>().prop_map(Value::Bool),
        ],
        0..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Request decoding never panics on arbitrary bytes.
    #[test]
    fn request_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut rd = bytes.as_slice();
        let _ = Request::decode(&mut rd);
    }

    /// Response decoding never panics on arbitrary bytes.
    #[test]
    fn response_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut rd = bytes.as_slice();
        let _ = Response::decode(&mut rd);
    }

    /// Value decoding never panics on arbitrary bytes.
    #[test]
    fn value_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let mut rd = bytes.as_slice();
        let _ = Value::decode(&mut rd);
    }

    /// WAL decoding never panics and always terminates on arbitrary bytes.
    #[test]
    fn log_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let records = decode_log(&bytes);
        // Bounded output: each record consumes at least 9 bytes.
        prop_assert!(records.len() <= bytes.len() / 9 + 1);
    }

    /// Batched requests round-trip for arbitrary row content.
    #[test]
    fn batch_request_roundtrips(table in any::<u32>(),
                                rows in prop::collection::vec(small_row(), 0..20)) {
        let req = Request::InsertBatch {
            table: TableId(table),
            rows,
        };
        let mut buf = BytesMut::new();
        req.encode(&mut buf);
        let mut rd = buf.freeze();
        let back = Request::decode(&mut rd).unwrap();
        // Compare via re-encoding (f64 NaN breaks PartialEq).
        let mut buf2 = BytesMut::new();
        back.encode(&mut buf2);
        let mut buf1 = BytesMut::new();
        req.encode(&mut buf1);
        prop_assert_eq!(buf1, buf2);
    }

    /// A valid frame with appended garbage decodes the frame and leaves
    /// exactly the garbage unread (framing is self-delimiting).
    #[test]
    fn framing_is_self_delimiting(row in small_row(),
                                  garbage in prop::collection::vec(any::<u8>(), 0..64)) {
        let req = Request::InsertSingle {
            table: TableId(1),
            row,
        };
        let mut buf = BytesMut::new();
        let frame_len = req.encode(&mut buf);
        buf.extend_from_slice(&garbage);
        let mut rd = buf.freeze();
        Request::decode(&mut rd).unwrap();
        prop_assert_eq!(rd.len(), garbage.len());
        prop_assert_eq!(frame_len + garbage.len(), rd.len() + frame_len);
    }

    /// Responses round-trip including error payloads.
    #[test]
    fn error_response_roundtrips(applied in any::<u32>(),
                                 offset in any::<u32>(),
                                 kind in 0u8..8,
                                 message in "[ -~]{0,64}") {
        let resp = Response::Err { applied, offset, kind, message };
        let mut buf = BytesMut::new();
        resp.encode(&mut buf);
        let mut rd = buf.freeze();
        prop_assert_eq!(Response::decode(&mut rd).unwrap(), resp);
    }
}
