//! Fuzz-style property tests for every decoder in the system: arbitrary
//! byte soup must produce clean errors, never panics, and valid frames
//! must round-trip. The codec is pinned hard here because the fencing
//! change added a wire field: every request shape (fenced and unfenced),
//! every error-kind byte, and truncation at every prefix length.

use proptest::prelude::*;

use bytes::BytesMut;
use skydb::error::DbError;
use skydb::schema::TableId;
use skydb::value::{Row, Value};
use skydb::wal::decode_log;
use skydb::wire::{decode_error_kind, encode_error_kind, Fence, Request, Response};

fn small_row() -> impl Strategy<Value = Row> {
    prop::collection::vec(
        prop_oneof![
            Just(Value::Null),
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Float),
            "[ -~]{0,16}".prop_map(Value::Text),
            any::<bool>().prop_map(Value::Bool),
        ],
        0..12,
    )
}

fn fence() -> impl Strategy<Value = Option<Fence>> {
    prop_oneof![
        Just(None),
        (any::<u64>(), any::<u64>()).prop_map(|(key, epoch)| Some(Fence { key, epoch })),
    ]
}

/// Any client request, covering every variant and fence combination.
fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (any::<u32>(), small_row(), fence()).prop_map(|(table, row, fence)| {
            Request::InsertSingle {
                table: TableId(table),
                row,
                fence,
            }
        }),
        (
            any::<u32>(),
            prop::collection::vec(small_row(), 0..12),
            fence()
        )
            .prop_map(|(table, rows, fence)| {
                Request::InsertBatch {
                    table: TableId(table),
                    rows,
                    fence,
                }
            }),
        fence().prop_map(|fence| Request::Commit { fence }),
        Just(Request::Rollback),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Request decoding never panics on arbitrary bytes.
    #[test]
    fn request_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut rd = bytes.as_slice();
        let _ = Request::decode(&mut rd);
    }

    /// Response decoding never panics on arbitrary bytes.
    #[test]
    fn response_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut rd = bytes.as_slice();
        let _ = Response::decode(&mut rd);
    }

    /// Value decoding never panics on arbitrary bytes.
    #[test]
    fn value_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let mut rd = bytes.as_slice();
        let _ = Value::decode(&mut rd);
    }

    /// WAL decoding never panics and always terminates on arbitrary bytes.
    #[test]
    fn log_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let records = decode_log(&bytes);
        // Bounded output: each record consumes at least 9 bytes.
        prop_assert!(records.len() <= bytes.len() / 9 + 1);
    }

    /// Every request variant round-trips, fenced or not.
    #[test]
    fn any_request_roundtrips(req in request()) {
        let mut buf = BytesMut::new();
        let n = req.encode(&mut buf);
        prop_assert_eq!(n, buf.len());
        let mut rd = buf.freeze();
        let back = Request::decode(&mut rd).unwrap();
        prop_assert_eq!(rd.len(), 0, "frame fully consumed");
        prop_assert_eq!(back.fence(), req.fence(), "fence survives the wire");
        // Compare via re-encoding (f64 NaN breaks PartialEq).
        let mut buf2 = BytesMut::new();
        back.encode(&mut buf2);
        let mut buf1 = BytesMut::new();
        req.encode(&mut buf1);
        prop_assert_eq!(buf1, buf2);
    }

    /// Every strict prefix of a valid request frame is rejected with a
    /// clean error — truncation anywhere (mid-fence, mid-header, mid-row)
    /// can never decode successfully, and never panics.
    #[test]
    fn truncated_request_prefixes_rejected(req in request()) {
        let mut buf = BytesMut::new();
        req.encode(&mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(0..cut);
            // Rows are self-delimiting, so a cut at a row boundary of a
            // batch can decode as a *different* (shorter) valid batch; a
            // clean decode must then never equal the original frame.
            if let Ok(back) = Request::decode(&mut partial) {
                let mut re = BytesMut::new();
                back.encode(&mut re);
                prop_assert!(re[..] != full[..], "cut {} decoded as the full frame", cut);
            }
        }
    }

    /// A valid frame with appended garbage decodes the frame and leaves
    /// exactly the garbage unread (framing is self-delimiting).
    #[test]
    fn framing_is_self_delimiting(row in small_row(),
                                  f in fence(),
                                  garbage in prop::collection::vec(any::<u8>(), 0..64)) {
        let req = Request::InsertSingle {
            table: TableId(1),
            row,
            fence: f,
        };
        let mut buf = BytesMut::new();
        let frame_len = req.encode(&mut buf);
        buf.extend_from_slice(&garbage);
        let mut rd = buf.freeze();
        Request::decode(&mut rd).unwrap();
        prop_assert_eq!(rd.len(), garbage.len());
        prop_assert_eq!(frame_len + garbage.len(), rd.len() + frame_len);
    }

    /// Responses round-trip including error payloads, for every error-kind
    /// byte the protocol can carry (0..=11 defined, 12.. reserved).
    #[test]
    fn error_response_roundtrips(applied in any::<u32>(),
                                 offset in any::<u32>(),
                                 kind in 0u8..16,
                                 message in "[ -~]{0,64}") {
        let resp = Response::Err { applied, offset, kind, message };
        let mut buf = BytesMut::new();
        resp.encode(&mut buf);
        let mut rd = buf.freeze();
        prop_assert_eq!(Response::decode(&mut rd).unwrap(), resp);
    }

    /// Every strict prefix of an error response is rejected cleanly.
    #[test]
    fn truncated_response_prefixes_rejected(kind in 0u8..16,
                                            message in "[ -~]{0,32}") {
        let resp = Response::Err { applied: 3, offset: 1, kind, message };
        let mut buf = BytesMut::new();
        resp.encode(&mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(0..cut);
            prop_assert!(Response::decode(&mut partial).is_err(), "cut {}", cut);
        }
    }

    /// Decoding a wire error kind and re-encoding the reconstructed error
    /// is the identity for every defined kind byte; undefined bytes fall
    /// back to the protocol-error class.
    #[test]
    fn error_kind_bytes_are_stable(kind in 0u8..16, message in "[ -~]{0,32}") {
        let decoded = decode_error_kind(kind, message);
        let back = encode_error_kind(&decoded);
        if kind <= 13 {
            prop_assert_eq!(back, kind);
        } else {
            prop_assert_eq!(back, 0, "reserved kinds fall back to protocol");
            prop_assert!(matches!(decoded, DbError::Protocol(_)));
        }
    }
}
