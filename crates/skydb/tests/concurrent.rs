//! Concurrency stress: parallel batch inserts, queries, writer cycles and
//! commits racing on one engine must preserve every invariant.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use skydb::engine::Engine;
use skydb::expr::{CmpOp, Expr};
use skydb::schema::TableBuilder;
use skydb::value::{DataType, Key, Row, Value};
use skydb::DbConfig;

fn stress_engine() -> Arc<Engine> {
    let e = Engine::new(DbConfig::test());
    let parents = TableBuilder::new("parents")
        .col("id", DataType::Int)
        .pk(&["id"])
        .build()
        .unwrap();
    let children = TableBuilder::new("children")
        .col("id", DataType::Int)
        .col("parent_id", DataType::Int)
        .col("v", DataType::Float)
        .pk(&["id"])
        .fk("fk_parent", &["parent_id"], "parents")
        .build()
        .unwrap();
    e.create_table(parents).unwrap();
    e.create_table(children).unwrap();
    Arc::new(e)
}

#[test]
fn parallel_writers_readers_and_writer_cycles() {
    let e = stress_engine();
    let parents = e.table_id("parents").unwrap();
    let children = e.table_id("children").unwrap();

    // Seed parents.
    let txn = e.begin();
    for i in 0..8 {
        e.insert_row(txn, parents, &[Value::Int(i)]).unwrap();
    }
    e.commit(txn).unwrap();

    const WRITERS: i64 = 6;
    const ROWS_PER_WRITER: i64 = 2_000;
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // Writers: batched inserts, each in its own committed transaction.
        for w in 0..WRITERS {
            let e = e.clone();
            s.spawn(move || {
                let txn = e.begin();
                let rows: Vec<Row> = (0..ROWS_PER_WRITER)
                    .map(|i| {
                        let id = w * ROWS_PER_WRITER + i;
                        vec![Value::Int(id), Value::Int(id % 8), Value::Float(id as f64)]
                    })
                    .collect();
                for chunk in rows.chunks(40) {
                    let out = e.apply_batch(txn, children, chunk);
                    assert!(out.is_complete(), "{:?}", out.failed);
                }
                e.commit(txn).unwrap();
            });
        }
        // Readers: point lookups and filtered scans while writes fly.
        for r in 0..2 {
            let e = e.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut probes = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = Key(vec![Value::Int((probes as i64 * 37 + r) % 12_000)]);
                    // Must never panic or return a corrupt row.
                    if let Some(row) = e.pk_get(children, &key).unwrap() {
                        assert_eq!(row.len(), 3);
                        assert_eq!(row[0], key.0[0]);
                    }
                    if probes.is_multiple_of(50) {
                        let hits = e
                            .scan_where(parents, Some(&Expr::cmp(0, CmpOp::Ge, 0i64)))
                            .unwrap();
                        assert_eq!(hits.len(), 8);
                    }
                    probes += 1;
                }
                assert!(probes > 0);
            });
        }
        // A maintenance thread forcing extra writer cycles.
        {
            let e = e.clone();
            let stop = stop.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    e.writer_cycle();
                    std::thread::yield_now();
                }
            });
        }
        // Wait for writers by joining scope-spawned writer threads: the
        // writers finish on their own; then flip the stop flag. Easiest
        // within a scope: spawn a watcher that polls the row count.
        let e2 = e.clone();
        let stop2 = stop.clone();
        s.spawn(move || {
            let want = (WRITERS * ROWS_PER_WRITER) as u64;
            while e2.row_count(children) < want {
                std::thread::yield_now();
            }
            stop2.store(true, Ordering::Relaxed);
        });
    });

    // Every row present exactly once, fully indexed, fully scannable.
    let total = (WRITERS * ROWS_PER_WRITER) as u64;
    assert_eq!(e.row_count(children), total);
    assert_eq!(e.scan_where(children, None).unwrap().len() as u64, total);
    assert_eq!(e.stats().snapshot().rows_inserted, total + 8);
    for probe in [0i64, 1, 5_999, 11_999] {
        assert!(
            e.pk_get(children, &Key(vec![Value::Int(probe)]))
                .unwrap()
                .is_some(),
            "row {probe} missing"
        );
    }
    e.checkpoint();
}

#[test]
fn concurrent_duplicate_inserts_admit_exactly_one() {
    // All threads race to insert the SAME primary keys: exactly one copy
    // of each must win, across any interleaving.
    let e = stress_engine();
    let parents = e.table_id("parents").unwrap();
    std::thread::scope(|s| {
        for _ in 0..6 {
            let e = e.clone();
            s.spawn(move || {
                let txn = e.begin();
                for i in 0..500 {
                    let _ = e.insert_row(txn, parents, &[Value::Int(i)]);
                }
                e.commit(txn).unwrap();
            });
        }
    });
    assert_eq!(e.row_count(parents), 500);
    let snap = e.stats().snapshot();
    assert_eq!(snap.rows_inserted, 500);
    // A losing insert sees a PK violation when the winning copy had
    // already committed, or a retryable write conflict while the winner
    // was still in flight; between them every loser is accounted for.
    assert_eq!(snap.pk_violations + snap.write_conflicts, 6 * 500 - 500);
    assert!(snap.pk_violations > 0 || snap.write_conflicts > 0);
}

#[test]
fn delete_by_pks_under_concurrent_reads() {
    let e = stress_engine();
    let parents = e.table_id("parents").unwrap();
    let txn = e.begin();
    for i in 0..2_000 {
        e.insert_row(txn, parents, &[Value::Int(i)]).unwrap();
    }
    e.commit(txn).unwrap();

    let victims: std::collections::BTreeSet<Key> = (0..2_000)
        .filter(|i| i % 3 == 0)
        .map(|i| Key(vec![Value::Int(i)]))
        .collect();
    let n_victims = victims.len() as u64;

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let e2 = e.clone();
        let stop2 = stop.clone();
        s.spawn(move || {
            let mut i = 0i64;
            while !stop2.load(Ordering::Relaxed) {
                let _ = e2.pk_get(parents, &Key(vec![Value::Int(i % 2_000)]));
                i += 1;
            }
        });
        let txn = e.begin();
        let deleted = e.delete_by_pks(txn, parents, &victims).unwrap();
        e.commit(txn).unwrap();
        assert_eq!(deleted, n_victims);
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(e.row_count(parents), 2_000 - n_victims);
    assert!(e
        .pk_get(parents, &Key(vec![Value::Int(3)]))
        .unwrap()
        .is_none());
    assert!(e
        .pk_get(parents, &Key(vec![Value::Int(4)]))
        .unwrap()
        .is_some());
}
