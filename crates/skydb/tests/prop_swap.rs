//! Property tests for the season-atomicity contract behind reprocessing
//! campaigns: a named scan pinned by [`Engine::scan_named_committed`]
//! must see **exactly one season** — the full row set bound to the name
//! at resolve time — no matter how scans and shadow swaps interleave.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use skydb::engine::Engine;
use skydb::schema::TableBuilder;
use skydb::value::{DataType, Value};

/// Two seasons of `objects` with distinguishable row counts: the live
/// name starts bound to season A (`rows_a`), the shadow to season B.
fn two_season_engine(rows_a: u64, rows_b: u64) -> Engine {
    let e = Engine::for_tests();
    for (name, rows) in [("objects", rows_a), ("objects__shadow", rows_b)] {
        let schema = TableBuilder::new(name)
            .col("object_id", DataType::Int)
            .pk(&["object_id"])
            .build()
            .unwrap();
        let tid = e.create_table(schema).unwrap();
        let txn = e.begin();
        for id in 0..rows {
            e.insert_row(txn, tid, &[Value::Int(id as i64)]).unwrap();
        }
        e.commit(txn).unwrap();
    }
    e
}

const SWAP: [(&str, &str); 1] = [("objects", "objects__shadow")];

fn swap_pairs() -> Vec<(String, String)> {
    SWAP.iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any serial interleaving of named scans and swaps: each scan sees
    /// exactly the season currently bound to the name — never a blend,
    /// never an empty in-between.
    #[test]
    fn serial_interleavings_see_exactly_one_season(
        rows_a in 1u64..12,
        extra_b in 1u64..12,
        ops in prop::collection::vec(any::<bool>(), 1..24),
    ) {
        let rows_b = rows_a + extra_b;
        let e = two_season_engine(rows_a, rows_b);
        let mut swapped = false;
        for &is_swap in &ops {
            if is_swap {
                e.swap_tables(&swap_pairs()).unwrap();
                swapped = !swapped;
            } else {
                let season = if swapped { rows_b } else { rows_a };
                let live = e.scan_named_committed("objects", None).unwrap();
                prop_assert_eq!(live.rows.len() as u64, season);
                let shadow = e.scan_named_committed("objects__shadow", None).unwrap();
                prop_assert_eq!(shadow.rows.len() as u64, rows_a + rows_b - season);
            }
        }
    }

    /// Concurrent readers racing an arbitrary number of swaps: every
    /// pinned scan observes one full season (`rows_a` or `rows_b`
    /// exactly), and the final binding matches the swap parity.
    #[test]
    fn concurrent_scans_never_straddle_a_swap(
        rows_a in 1u64..10,
        extra_b in 1u64..10,
        swaps in 1usize..8,
    ) {
        let rows_b = rows_a + extra_b;
        let e = Arc::new(two_season_engine(rows_a, rows_b));
        let stop = Arc::new(AtomicBool::new(false));
        let torn = Arc::new(AtomicU64::new(0));
        let reads = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let (e, stop, torn, reads) =
                    (e.clone(), stop.clone(), torn.clone(), reads.clone());
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let n = e.scan_named_committed("objects", None).unwrap().rows.len() as u64;
                        if n != rows_a && n != rows_b {
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                        reads.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        // Let the readers spin up before the first swap, and give them a
        // scheduling window between swaps, so scans genuinely race the
        // rebinds instead of all landing after them.
        while reads.load(Ordering::Relaxed) == 0 {
            std::thread::yield_now();
        }
        for _ in 0..swaps {
            e.swap_tables(&swap_pairs()).unwrap();
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        prop_assert_eq!(torn.load(Ordering::Relaxed), 0);
        prop_assert!(reads.load(Ordering::Relaxed) > 0);
        let expect = if swaps % 2 == 1 { rows_b } else { rows_a };
        let n = e.scan_named_committed("objects", None).unwrap().rows.len() as u64;
        prop_assert_eq!(n, expect);
    }
}
