//! Property tests for declination-zone sharding: the zone map is a total,
//! stable, monotone partition of its band, zone boundaries round-trip,
//! and a scatter-gather scan over a sharded group returns exactly the
//! rows a single engine holding everything would.

use std::sync::Arc;

use proptest::prelude::*;

use skydb::config::DbConfig;
use skydb::schema::TableBuilder;
use skydb::server::Server;
use skydb::shard::{GatherPolicy, ShardGroup, ZoneMap};
use skydb::value::{DataType, Value};

fn band_strategy() -> impl Strategy<Value = (u32, f64, f64)> {
    (1u32..12, -90.0f64..89.0, 0.01f64..40.0).prop_map(|(zones, lo, width)| {
        let hi = (lo + width).min(90.0);
        (zones, lo, hi)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every declination — in band, out of band, or pathological — maps
    /// to exactly one valid zone, and the assignment is stable.
    #[test]
    fn zone_assignment_is_total_and_stable(
        (zones, lo, hi) in band_strategy(),
        decs in prop::collection::vec(-120.0f64..120.0, 1..64),
    ) {
        let map = ZoneMap::band(zones, lo, hi);
        for dec in decs {
            let z = map.zone_for_dec(dec);
            prop_assert!(z < zones, "dec {dec} -> zone {z} of {zones}");
            prop_assert_eq!(map.zone_for_dec(dec), z, "assignment must be stable");
        }
        prop_assert!(map.zone_for_dec(f64::NAN) < zones);
        prop_assert!(map.zone_for_dec(f64::INFINITY) < zones);
        prop_assert!(map.zone_for_dec(f64::NEG_INFINITY) < zones);
    }

    /// Zone assignment is monotone in declination: a larger dec never
    /// lands in a smaller zone, so zones really are latitude bands.
    #[test]
    fn zone_assignment_is_monotone(
        (zones, lo, hi) in band_strategy(),
        mut decs in prop::collection::vec(-120.0f64..120.0, 2..64),
    ) {
        let map = ZoneMap::band(zones, lo, hi);
        decs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let assigned: Vec<u32> = decs.iter().map(|d| map.zone_for_dec(*d)).collect();
        for w in assigned.windows(2) {
            prop_assert!(w[0] <= w[1], "zones out of order: {assigned:?}");
        }
    }

    /// Each zone's lower bound maps back to that zone, bounds tile the
    /// band without gaps, and `covering_zones` over a zone's own bounds
    /// names exactly that zone.
    #[test]
    fn zone_boundaries_round_trip((zones, lo, hi) in band_strategy()) {
        let map = ZoneMap::band(zones, lo, hi);
        let (band_lo, band_hi) = map.dec_range();
        prop_assert!(band_lo < band_hi);
        let mut prev_hi = band_lo;
        for z in 0..zones {
            let (zlo, zhi) = map.bounds(z);
            prop_assert_eq!(map.zone_for_dec(zlo), z, "lower bound of zone {}", z);
            prop_assert!(zlo < zhi);
            prop_assert!((zlo - prev_hi).abs() < 1e-9, "gap before zone {}", z);
            prev_hi = zhi;
            let covering = map.covering_zones(zlo, zhi - (zhi - zlo) * 1e-6);
            prop_assert!(covering.contains(&z), "zone {} not in {:?}", z, covering);
        }
        prop_assert!((prev_hi - band_hi).abs() < 1e-9);
    }
}

fn obj_server() -> Arc<Server> {
    let s = Server::start(DbConfig::test());
    let t = TableBuilder::new("objects")
        .col("object_id", DataType::Int)
        .col("dec", DataType::Float)
        .pk(&["object_id"])
        .build()
        .unwrap();
    s.engine().create_table(t).unwrap();
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Ground truth for scatter-gather: a sharded group and a single
    /// engine loaded with the same rows answer a full scan with the same
    /// row multiset, shard-complete (no partial flag).
    #[test]
    fn scatter_gather_scan_matches_single_engine(
        zones in 1u32..5,
        raw_points in prop::collection::vec((0i64..500, -2.0f64..2.0), 1..48),
    ) {
        // Dedup by id: one row per primary key, first dec wins.
        let mut points: std::collections::BTreeMap<i64, f64> = std::collections::BTreeMap::new();
        for (id, dec) in raw_points {
            points.entry(id).or_insert(dec);
        }
        let map = ZoneMap::band(zones, -2.0, 2.0);
        let servers = (0..zones).map(|_| obj_server()).collect();
        let group = ShardGroup::new(
            map,
            servers,
            &["objects"],
            GatherPolicy::default().with_attempts(2),
            &skyobs::Registry::new(),
        );
        let single = obj_server();

        for (&id, &dec) in &points {
            let zone = map.zone_for_dec(dec);
            let session = group.server(zone).connect();
            session.set_fence(Some(group.write_fence(zone)));
            let stmt = session.prepare_insert("objects").unwrap();
            session
                .execute(&stmt, vec![Value::Int(id), Value::Float(dec)])
                .unwrap();
            session.commit().unwrap();
            group.note_pk_zone(id, zone);

            let session = single.connect();
            let stmt = session.prepare_insert("objects").unwrap();
            session
                .execute(&stmt, vec![Value::Int(id), Value::Float(dec)])
                .unwrap();
            session.commit().unwrap();
        }

        let sharded = group.scan("objects", None).unwrap();
        prop_assert!(!sharded.partial, "healthy group must be shard-complete");
        prop_assert!(sharded.missing_zones.is_empty());
        let mut got: Vec<(i64, i64)> = sharded
            .rows
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_f64().unwrap().to_bits() as i64))
            .collect();
        got.sort_unstable();

        let tid = single.engine().table_id("objects").unwrap();
        let mut want: Vec<(i64, i64)> = single
            .engine()
            .scan_where(tid, None)
            .unwrap()
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_f64().unwrap().to_bits() as i64))
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);

        // And every id is reachable through the routed pk path.
        for &id in points.keys() {
            let res = group.pk_lookup("objects", vec![Value::Int(id)]).unwrap();
            prop_assert_eq!(res.rows.len(), 1, "pk {} not found", id);
        }
    }
}
