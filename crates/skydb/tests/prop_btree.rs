//! Property tests: the B+-tree against a `BTreeMap`/`BTreeSet` reference
//! model, plus structural invariants after arbitrary operation sequences.

use std::collections::BTreeSet;

use proptest::prelude::*;

use skydb::btree::BPlusTree;
use skydb::value::{Key, Value};

fn ikey(i: i64) -> Key {
    Key(vec![Value::Int(i)])
}

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, u8),
    Remove(i64, u8),
    RangeCheck(i64, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (-200i64..200, any::<u8>()).prop_map(|(k, p)| Op::Insert(k, p)),
        1 => (-200i64..200, any::<u8>()).prop_map(|(k, p)| Op::Remove(k, p)),
        1 => (-250i64..250, -250i64..250).prop_map(|(a, b)| Op::RangeCheck(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Non-unique tree behaves exactly like a BTreeSet<(key, payload)>.
    #[test]
    fn matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..300),
                               order in 4usize..48) {
        let mut tree = BPlusTree::new(false, order);
        let mut model: BTreeSet<(i64, u64)> = BTreeSet::new();
        for op in ops {
            match op {
                Op::Insert(k, p) => {
                    let p = p as u64;
                    if model.insert((k, p)) {
                        tree.insert(ikey(k), p).unwrap();
                    } else {
                        // duplicate (key, payload): skip to keep models aligned
                    }
                }
                Op::Remove(k, p) => {
                    let p = p as u64;
                    let was = model.remove(&(k, p));
                    prop_assert_eq!(tree.remove(&ikey(k), p), was);
                }
                Op::RangeCheck(lo, hi) => {
                    let got: Vec<(i64, u64)> = tree
                        .range(&ikey(lo), &ikey(hi))
                        .into_iter()
                        .map(|(k, p)| (k.0[0].as_i64().unwrap(), p))
                        .collect();
                    let want: Vec<(i64, u64)> = model
                        .range((lo, 0)..=(hi, u64::MAX))
                        .cloned()
                        .collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), model.len() as u64);
        }
        tree.validate().map_err(TestCaseError::fail)?;
        // Final full-content comparison.
        let all: Vec<(i64, u64)> = tree
            .range(&ikey(i64::MIN + 1), &ikey(i64::MAX - 1))
            .into_iter()
            .map(|(k, p)| (k.0[0].as_i64().unwrap(), p))
            .collect();
        let want: Vec<(i64, u64)> = model.iter().cloned().collect();
        prop_assert_eq!(all, want);
    }

    /// Unique tree: second insert of a key always fails, contents stay
    /// first-writer-wins.
    #[test]
    fn unique_tree_first_writer_wins(keys in prop::collection::vec(-100i64..100, 1..200)) {
        let mut tree = BPlusTree::new(true, 8);
        let mut model = std::collections::BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            let ok = tree.insert(ikey(*k), i as u64).is_ok();
            let fresh = !model.contains_key(k);
            prop_assert_eq!(ok, fresh, "key {}", k);
            model.entry(*k).or_insert(i as u64);
        }
        for (k, p) in &model {
            prop_assert_eq!(tree.get_first(&ikey(*k)), Some(*p));
        }
        tree.validate().map_err(TestCaseError::fail)?;
    }

    /// Bulk build from any sorted input equals incremental insertion.
    #[test]
    fn bulk_build_equals_incremental(mut keys in prop::collection::btree_set(-500i64..500, 0..400),
                                     order in 4usize..64) {
        let entries: Vec<(Key, u64)> = keys
            .iter()
            .map(|&k| (ikey(k), (k + 500) as u64))
            .collect();
        let bulk = BPlusTree::bulk_build(true, order, entries.clone());
        bulk.validate().map_err(TestCaseError::fail)?;
        let mut inc = BPlusTree::new(true, order);
        for (k, p) in entries {
            inc.insert(k, p).unwrap();
        }
        prop_assert_eq!(bulk.len(), inc.len());
        if let Some(&probe) = keys.iter().next() {
            prop_assert_eq!(bulk.get_first(&ikey(probe)), inc.get_first(&ikey(probe)));
        }
        keys.clear();
    }

    /// Composite (multi-column) keys keep a total order through the tree.
    #[test]
    fn composite_keys_range_correctly(pairs in prop::collection::btree_set((0i64..20, 0i64..20), 1..100)) {
        let mut tree = BPlusTree::new(true, 8);
        for (i, (a, b)) in pairs.iter().enumerate() {
            tree.insert(Key(vec![Value::Int(*a), Value::Int(*b)]), i as u64).unwrap();
        }
        tree.validate().map_err(TestCaseError::fail)?;
        // Range over a prefix value [a, a] must return exactly the pairs
        // with that first component, in order of the second.
        let a0 = pairs.iter().next().unwrap().0;
        let lo = Key(vec![Value::Int(a0)]);
        let hi = Key(vec![Value::Int(a0), Value::Int(i64::MAX)]);
        let got: Vec<i64> = tree
            .range(&lo, &hi)
            .into_iter()
            .map(|(k, _)| k.0[1].as_i64().unwrap())
            .collect();
        let want: Vec<i64> = pairs
            .iter()
            .filter(|(a, _)| *a == a0)
            .map(|(_, b)| *b)
            .collect();
        prop_assert_eq!(got, want);
    }
}
