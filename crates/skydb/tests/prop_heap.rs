//! Property tests for heap storage: arbitrary insert/delete interleavings
//! against a vector reference model.

use proptest::prelude::*;

use skydb::heap::{RowId, TableHeap, ROW_CRC_BYTES};
use skydb::schema::TableId;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>),
    DeleteNth(usize),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => prop::collection::vec(any::<u8>(), 1..200).prop_map(Op::Insert),
        1 => (0usize..64).prop_map(Op::DeleteNth),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn heap_matches_reference(ops in prop::collection::vec(op(), 1..200)) {
        let mut heap = TableHeap::new(TableId(0));
        let mut model: Vec<(RowId, Vec<u8>)> = Vec::new();
        for o in ops {
            match o {
                Op::Insert(bytes) => {
                    let ins = heap.insert(bytes.clone().into_boxed_slice());
                    model.push((ins.row_id, bytes));
                }
                Op::DeleteNth(n) => {
                    if !model.is_empty() {
                        let (rid, _) = model.remove(n % model.len());
                        prop_assert!(heap.delete(rid));
                        prop_assert!(!heap.delete(rid), "double delete must fail");
                    }
                }
            }
            prop_assert_eq!(heap.row_count(), model.len() as u64);
        }
        // Every model row is retrievable byte-for-byte.
        for (rid, bytes) in &model {
            prop_assert_eq!(heap.get(*rid), Some(bytes.as_slice()));
        }
        // Scan visits exactly the live rows, in heap order.
        let mut expected: Vec<(RowId, &[u8])> =
            model.iter().map(|(r, b)| (*r, b.as_slice())).collect();
        expected.sort_by_key(|(r, _)| *r);
        let scanned: Vec<(RowId, &[u8])> = heap.scan().collect();
        prop_assert_eq!(scanned, expected);
        // Bytes accounting matches (each stored row carries its CRC frame).
        let total: usize = model.iter().map(|(_, b)| b.len() + ROW_CRC_BYTES).sum();
        prop_assert_eq!(heap.bytes_used(), total);
    }

    #[test]
    fn row_ids_are_dense_and_unique(sizes in prop::collection::vec(1usize..500, 1..300)) {
        let mut heap = TableHeap::new(TableId(7));
        let mut seen = std::collections::HashSet::new();
        for s in sizes {
            let ins = heap.insert(vec![0xCD; s].into_boxed_slice());
            prop_assert!(seen.insert(ins.row_id.packed()), "duplicate row id");
        }
        // Page count is consistent with capacity: no page holds more than
        // 8192 payload bytes, so pages ≥ total/8192.
        let total: u64 = heap.bytes_used() as u64;
        prop_assert!(heap.page_count() as u64 >= total / 8192);
    }
}
