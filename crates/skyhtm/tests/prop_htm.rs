//! Property tests for the HTM mesh and coordinate transforms.

use proptest::prelude::*;

use skyhtm::mesh::{self, depth_of, id_range_at_depth, is_valid, lookup, trixel_of};
use skyhtm::vector::Vec3;
use skyhtm::{
    cone_cover, equatorial_to_galactic, galactic_to_equatorial, htmid, separation_deg, Cone,
};

fn radec() -> impl Strategy<Value = (f64, f64)> {
    (0.0f64..360.0, -89.9f64..89.9)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The trixel returned by lookup really contains the point, at every
    /// depth, and its id is structurally valid with the right depth.
    #[test]
    fn lookup_contains_point((ra, dec) in radec(), depth in 0u8..16) {
        let p = Vec3::from_radec(ra, dec);
        let t = lookup(p, depth);
        prop_assert!(t.contains(p), "trixel {} lost ({ra}, {dec})", t.id);
        prop_assert!(is_valid(t.id));
        prop_assert_eq!(depth_of(t.id), depth);
    }

    /// Deeper ids refine shallower ones: the depth-d id is the depth-(d+k)
    /// id shifted down.
    #[test]
    fn ids_nest_by_prefix((ra, dec) in radec(), d1 in 0u8..10, extra in 1u8..8) {
        let shallow = htmid(ra, dec, d1);
        let deep = htmid(ra, dec, d1 + extra);
        prop_assert_eq!(deep >> (2 * extra as u32), shallow);
        let (lo, hi) = id_range_at_depth(shallow, d1 + extra);
        prop_assert!((lo..=hi).contains(&deep));
    }

    /// Reconstructing a trixel from its id gives back geometry containing
    /// the original point.
    #[test]
    fn trixel_of_inverts_lookup((ra, dec) in radec(), depth in 0u8..14) {
        let p = Vec3::from_radec(ra, dec);
        let t = lookup(p, depth);
        let rebuilt = trixel_of(t.id);
        prop_assert_eq!(rebuilt.id, t.id);
        prop_assert!(rebuilt.contains(p));
        // Centroid is inside and id-stable.
        let c = rebuilt.center();
        prop_assert!(rebuilt.contains(c));
    }

    /// Cone covers are sound: every point inside the cone falls in a
    /// covered range.
    #[test]
    fn cone_cover_is_sound((ra, dec) in radec(),
                           radius_arcmin in 0.5f64..120.0,
                           offset_frac in 0.0f64..1.0,
                           angle in 0.0f64..std::f64::consts::TAU,
                           depth in 6u8..14) {
        let cone = Cone::from_radec_arcmin(ra, dec, radius_arcmin);
        let ranges = cone_cover(&cone, depth);
        prop_assert!(!ranges.is_empty());
        for w in ranges.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "ranges must be disjoint and sorted");
        }
        // A point inside the cone (offset along a great circle by a
        // fraction of the radius).
        let r_deg = radius_arcmin / 60.0 * offset_frac * 0.95;
        let pdec = (dec + r_deg * angle.sin()).clamp(-89.99, 89.99);
        let pra = (ra + r_deg * angle.cos() / pdec.to_radians().cos().max(1e-3)).rem_euclid(360.0);
        if separation_deg(ra, dec, pra, pdec) * 60.0 <= radius_arcmin {
            let id = htmid(pra, pdec, depth);
            prop_assert!(
                ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&id)),
                "inside point ({pra}, {pdec}) not covered"
            );
        }
    }

    /// Equatorial↔galactic is a bijection that preserves angles.
    #[test]
    fn galactic_roundtrip((ra, dec) in radec(), (ra2, dec2) in radec()) {
        let (l, b) = equatorial_to_galactic(ra, dec);
        let (ra_back, dec_back) = galactic_to_equatorial(l, b);
        prop_assert!(separation_deg(ra, dec, ra_back, dec_back) < 1e-7);
        prop_assert!((0.0..360.0).contains(&l));
        prop_assert!((-90.0..=90.0).contains(&b));
        // Rotation preserves separations.
        let (l2, b2) = equatorial_to_galactic(ra2, dec2);
        let before = separation_deg(ra, dec, ra2, dec2);
        let after = separation_deg(l, b, l2, b2);
        prop_assert!((before - after).abs() < 1e-7, "{before} vs {after}");
    }

    /// Unit-vector conversion round-trips.
    #[test]
    fn radec_vector_roundtrip((ra, dec) in radec()) {
        let v = Vec3::from_radec(ra, dec);
        prop_assert!((v.norm() - 1.0).abs() < 1e-12);
        let (ra2, dec2) = v.to_radec();
        prop_assert!(separation_deg(ra, dec, ra2, dec2) < 1e-9);
    }

    /// Neighbouring points at depth d share a trixel iff they are closer
    /// than the trixel scale (sanity bound: same id ⇒ within ~2 bounding
    /// radii).
    #[test]
    fn same_trixel_implies_proximity((ra, dec) in radec(), depth in 4u8..12) {
        let t = lookup(Vec3::from_radec(ra, dec), depth);
        let r = t.bounding_radius();
        let c = t.center();
        let p = Vec3::from_radec(ra, dec);
        prop_assert!(c.angle_to(p) <= r + 1e-12);
    }

    /// Every root id 8..=15 is valid and deeper malformed ids are rejected.
    #[test]
    fn validity_checks(raw in any::<u64>()) {
        if is_valid(raw) {
            let d = depth_of(raw);
            prop_assert!(d <= 30);
            prop_assert!((8..=15).contains(&(raw >> (2 * d as u32))));
        }
    }
}

#[test]
fn roots_are_all_valid() {
    for id in 8u64..=15 {
        assert!(is_valid(id));
        assert_eq!(depth_of(id), 0);
    }
    assert!(!is_valid(0));
    assert!(!is_valid(7));
    assert_eq!(mesh::CATALOG_DEPTH, 20);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every trixel has exactly 3 distinct neighbors at its own depth, none
    /// of which is itself, and neighborhood is symmetric.
    #[test]
    fn neighbors_are_distinct_and_symmetric((ra, dec) in (0.0f64..360.0, -85.0f64..85.0),
                                            depth in 1u8..10) {
        let id = htmid(ra, dec, depth);
        let ns = mesh::neighbors(id);
        prop_assert!(ns.iter().all(|&n| n != id), "self-neighbor");
        prop_assert!(ns.iter().all(|&n| is_valid(n) && depth_of(n) == depth));
        let unique: std::collections::HashSet<u64> = ns.iter().copied().collect();
        prop_assert_eq!(unique.len(), 3, "neighbors must be distinct: {:?}", ns);
        // Symmetry: this trixel appears among each neighbor's neighbors.
        for &n in &ns {
            let back = mesh::neighbors(n);
            prop_assert!(back.contains(&id), "{id} -> {n} not symmetric ({back:?})");
        }
        // Geometric adjacency: each neighbor shares (nearly) two vertices.
        let t = trixel_of(id);
        for &n in &ns {
            let tn = trixel_of(n);
            let shared = t
                .vertices
                .iter()
                .filter(|v| tn.vertices.iter().any(|w| v.angle_to(*w) < 1e-9))
                .count();
            prop_assert!(shared >= 2, "neighbor {n} shares {shared} vertices");
        }
    }
}
