//! # skyhtm — Hierarchical Triangular Mesh and sky coordinates
//!
//! The SkyLoader paper's per-row load work includes "calculation of values
//! such as the Hierarchical Triangular Mesh ID (htmid) and sky coordinates
//! to facilitate the science research" (§3), and the one index the
//! repository keeps during the intensive loading phase is the index on
//! `htmid` (§4.5.1). This crate is a from-scratch implementation of both:
//!
//! * [`mesh`] — the HTM subdivision (Kunszt, Szalay & Thakar; paper
//!   reference \[10\]): point → trixel id at any depth, trixel
//!   reconstruction, id ranges;
//! * [`cover`] — cone search as sorted trixel id ranges, which is what a
//!   B-tree on `htmid` needs;
//! * [`coords`] — J2000 equatorial ↔ galactic transforms;
//! * [`vector`] — unit-sphere vector math.
//!
//! ```
//! use skyhtm::{htmid, CATALOG_DEPTH};
//! let id = htmid(266.4168, -29.0078, CATALOG_DEPTH);
//! assert!(skyhtm::mesh::is_valid(id));
//! ```

#![warn(missing_docs)]

pub mod coords;
pub mod cover;
pub mod mesh;
pub mod vector;

pub use coords::{equatorial_to_galactic, galactic_to_equatorial, separation_deg};
pub use cover::{cone_cover, cone_cover_at, cone_key_ranges, cone_key_ranges_at, Cone};
pub use mesh::{htmid, neighbors, trixel_of, HtmId, Trixel, CATALOG_DEPTH, MAX_DEPTH};
pub use vector::Vec3;
