//! The Hierarchical Triangular Mesh: point → trixel id and back.
//!
//! HTM (Kunszt, Szalay & Thakar; paper reference \[10\]) recursively divides
//! the celestial sphere into spherical triangles ("trixels"). The eight
//! level-0 trixels have ids 8–15 (binary `1000`–`1111`); each subdivision
//! appends two bits, so a depth-`d` trixel id occupies `4 + 2d` bits and
//! the ids of a trixel's descendants form a contiguous range — which is
//! what makes a B-tree index on `htmid` support spatial queries.

use crate::vector::Vec3;

/// A trixel identifier (depth is implicit in the bit length).
pub type HtmId = u64;

/// Maximum supported subdivision depth (31 keeps ids in 66 bits? no —
/// 4 + 2·30 = 64, so 30 is the hard cap; 25 is already ~0.01 arcsec).
pub const MAX_DEPTH: u8 = 30;

/// Depth used by the Palomar-Quest repository for object htmids
/// (level 20 ≈ 0.3 arcsec trixels, the catalog's astrometric scale).
pub const CATALOG_DEPTH: u8 = 20;

const V0: Vec3 = Vec3::new(0.0, 0.0, 1.0);
const V1: Vec3 = Vec3::new(1.0, 0.0, 0.0);
const V2: Vec3 = Vec3::new(0.0, 1.0, 0.0);
const V3: Vec3 = Vec3::new(-1.0, 0.0, 0.0);
const V4: Vec3 = Vec3::new(0.0, -1.0, 0.0);
const V5: Vec3 = Vec3::new(0.0, 0.0, -1.0);

/// The eight root trixels, indexed by `id - 8`.
pub const ROOTS: [(HtmId, [Vec3; 3]); 8] = [
    (8, [V1, V5, V2]),  // S0
    (9, [V2, V5, V3]),  // S1
    (10, [V3, V5, V4]), // S2
    (11, [V4, V5, V1]), // S3
    (12, [V1, V0, V4]), // N0
    (13, [V4, V0, V3]), // N1
    (14, [V3, V0, V2]), // N2
    (15, [V2, V0, V1]), // N3
];

/// A trixel: id + vertices.
#[derive(Debug, Clone, Copy)]
pub struct Trixel {
    /// The HTM id.
    pub id: HtmId,
    /// The three vertices (counterclockwise seen from outside).
    pub vertices: [Vec3; 3],
}

impl Trixel {
    /// The eight level-0 trixels.
    pub fn roots() -> impl Iterator<Item = Trixel> {
        ROOTS.iter().map(|&(id, vertices)| Trixel { id, vertices })
    }

    /// Depth of this trixel (0 for roots).
    pub fn depth(&self) -> u8 {
        depth_of(self.id)
    }

    /// The four children of this trixel.
    pub fn children(&self) -> [Trixel; 4] {
        let [a, b, c] = self.vertices;
        let w0 = b.midpoint(c);
        let w1 = c.midpoint(a);
        let w2 = a.midpoint(b);
        [
            Trixel {
                id: self.id << 2,
                vertices: [a, w2, w1],
            },
            Trixel {
                id: (self.id << 2) | 1,
                vertices: [b, w0, w2],
            },
            Trixel {
                id: (self.id << 2) | 2,
                vertices: [c, w1, w0],
            },
            Trixel {
                id: (self.id << 2) | 3,
                vertices: [w0, w1, w2],
            },
        ]
    }

    /// `true` if the unit vector `p` lies in this trixel.
    ///
    /// Boundary points are counted as inside (`>= -ε` test), so lookups on
    /// shared edges deterministically pick the first matching child.
    pub fn contains(&self, p: Vec3) -> bool {
        const EPS: f64 = -1e-12;
        let [a, b, c] = self.vertices;
        a.cross(b).dot(p) >= EPS && b.cross(c).dot(p) >= EPS && c.cross(a).dot(p) >= EPS
    }

    /// The normalized centroid.
    pub fn center(&self) -> Vec3 {
        let [a, b, c] = self.vertices;
        (a + b + c).normalized()
    }

    /// An upper bound on the angular radius (radians) of the trixel around
    /// its centroid.
    pub fn bounding_radius(&self) -> f64 {
        let c = self.center();
        self.vertices
            .iter()
            .map(|v| c.angle_to(*v))
            .fold(0.0, f64::max)
    }
}

/// Depth encoded in an id's bit length.
///
/// # Panics
/// Panics on ids below 8 (not a valid trixel).
pub fn depth_of(id: HtmId) -> u8 {
    assert!(id >= 8, "invalid htmid {id}");
    let bits = 64 - id.leading_zeros();
    debug_assert!(
        bits >= 4 && bits.is_multiple_of(2),
        "malformed htmid {id:#b}"
    );
    ((bits - 4) / 2) as u8
}

/// `true` if `id` is structurally a valid HTM id.
pub fn is_valid(id: HtmId) -> bool {
    if id < 8 {
        return false;
    }
    let bits = 64 - id.leading_zeros();
    bits >= 4 && bits.is_multiple_of(2) && (id >> (bits - 4)) >= 8
}

/// Find the depth-`depth` trixel containing the point.
///
/// # Panics
/// Panics if `depth > MAX_DEPTH`.
pub fn lookup(p: Vec3, depth: u8) -> Trixel {
    assert!(depth <= MAX_DEPTH, "depth {depth} exceeds MAX_DEPTH");
    let mut current = Trixel::roots()
        .find(|t| t.contains(p))
        .expect("every unit vector is in some root trixel");
    for _ in 0..depth {
        let children = current.children();
        current = *children
            .iter()
            .find(|t| t.contains(p))
            .expect("point in parent must be in some child");
    }
    current
}

/// The htmid of `(ra, dec)` (degrees) at `depth`.
pub fn htmid(ra_deg: f64, dec_deg: f64, depth: u8) -> HtmId {
    lookup(Vec3::from_radec(ra_deg, dec_deg), depth).id
}

/// Reconstruct a trixel (vertices included) from its id.
///
/// # Panics
/// Panics on invalid ids.
pub fn trixel_of(id: HtmId) -> Trixel {
    assert!(is_valid(id), "invalid htmid {id}");
    let depth = depth_of(id);
    let root_id = id >> (2 * depth as u32);
    let mut t = Trixel {
        id: root_id,
        vertices: ROOTS[(root_id - 8) as usize].1,
    };
    for level in (0..depth).rev() {
        let child = ((id >> (2 * level as u32)) & 3) as usize;
        t = t.children()[child];
    }
    t
}

/// The id range `[lo, hi]` (inclusive) of all depth-`target_depth`
/// descendants of `id`. Used to turn a trixel cover into B-tree ranges.
///
/// # Panics
/// Panics if `target_depth` is shallower than `id`'s depth.
pub fn id_range_at_depth(id: HtmId, target_depth: u8) -> (HtmId, HtmId) {
    let d = depth_of(id);
    assert!(
        target_depth >= d,
        "target depth {target_depth} above trixel depth {d}"
    );
    let shift = 2 * (target_depth - d) as u32;
    (id << shift, ((id + 1) << shift) - 1)
}

/// The three edge-adjacent trixels of `id`, at the same depth.
///
/// For each edge, the neighbor is found by probing a point just across the
/// edge midpoint (nudged away from the opposite vertex) — robust at any
/// depth because trixels tile the sphere without gaps.
///
/// # Panics
/// Panics on invalid ids.
pub fn neighbors(id: HtmId) -> [HtmId; 3] {
    let t = trixel_of(id);
    let depth = t.depth();
    let [a, b, c] = t.vertices;
    let mut out = [0u64; 3];
    for (i, (u, v, opposite)) in [(a, b, c), (b, c, a), (c, a, b)].into_iter().enumerate() {
        let m = u.midpoint(v);
        // Step from the edge midpoint away from the opposite vertex, by a
        // fraction of the trixel scale, then renormalize onto the sphere.
        let scale = t.bounding_radius().max(1e-9);
        // Tangent direction at m pointing away from the opposite vertex:
        // project (m - opposite) onto the tangent plane at m.
        let chord = m - opposite;
        let away = (chord - m * chord.dot(m)).normalized();
        let probe = (m + away * (scale * 0.2)).normalized();
        out[i] = lookup(probe, depth).id;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_cover_the_sphere() {
        // A grid of points: each must be in exactly one root (boundaries may
        // be in more than one due to the inclusive test, so check >= 1).
        for idec in -8..=8 {
            for ira in 0..36 {
                let p = Vec3::from_radec(ira as f64 * 10.0, idec as f64 * 11.0);
                let n = Trixel::roots().filter(|t| t.contains(p)).count();
                assert!(
                    n >= 1,
                    "point uncovered at ra={} dec={}",
                    ira * 10,
                    idec * 11
                );
            }
        }
    }

    #[test]
    fn depth_and_validity() {
        assert_eq!(depth_of(8), 0);
        assert_eq!(depth_of(15), 0);
        assert_eq!(depth_of(32), 1); // 8 << 2
        assert_eq!(depth_of(63), 1);
        assert!(is_valid(8));
        assert!(!is_valid(7));
        assert!(!is_valid(16), "odd bit-length ids are malformed");
        assert!(is_valid(8 << 40));
    }

    #[test]
    fn lookup_id_has_requested_depth() {
        for d in [0u8, 1, 5, 10, 20] {
            let id = htmid(133.7, -42.0, d);
            assert_eq!(depth_of(id), d);
            assert!(is_valid(id));
        }
    }

    #[test]
    fn children_partition_parent() {
        let parent = Trixel::roots().next().unwrap();
        let kids = parent.children();
        // Child ids are parent*4 + 0..3.
        for (i, k) in kids.iter().enumerate() {
            assert_eq!(k.id, (parent.id << 2) | i as u64);
            assert_eq!(k.depth(), 1);
        }
        // Points in the parent are in >=1 child.
        for t in 0..50 {
            let f = t as f64 / 50.0;
            let p = (parent.vertices[0] * f
                + parent.vertices[1] * (0.7 - 0.6 * f)
                + parent.vertices[2] * 0.3)
                .normalized();
            if parent.contains(p) {
                assert!(kids.iter().any(|k| k.contains(p)));
            }
        }
    }

    #[test]
    fn trixel_of_reconstructs_lookup() {
        for &(ra, dec) in &[(0.1, 0.1), (123.4, 56.7), (359.0, -89.0), (200.0, 30.0)] {
            let p = Vec3::from_radec(ra, dec);
            let t = lookup(p, 12);
            let rebuilt = trixel_of(t.id);
            assert_eq!(rebuilt.id, t.id);
            assert!(rebuilt.contains(p), "rebuilt trixel must contain the point");
        }
    }

    #[test]
    fn deeper_lookup_refines_prefix() {
        // The depth-d id is a prefix (in base-4) of the depth-(d+k) id.
        let (ra, dec) = (211.3, -17.8);
        let shallow = htmid(ra, dec, 8);
        let deep = htmid(ra, dec, 14);
        assert_eq!(deep >> (2 * 6), shallow);
    }

    #[test]
    fn id_ranges_nest() {
        let id = htmid(10.0, 10.0, 5);
        let (lo, hi) = id_range_at_depth(id, 9);
        assert_eq!(hi - lo + 1, 4u64.pow(4));
        let deep = htmid(10.0, 10.0, 9);
        assert!((lo..=hi).contains(&deep));
        // Identity range at the same depth.
        assert_eq!(id_range_at_depth(id, 5), (id, id));
    }

    #[test]
    fn nearby_points_share_deep_trixels_far_points_do_not() {
        let a = htmid(100.0, 20.0, 20);
        let b = htmid(100.0 + 1e-7, 20.0, 20);
        let c = htmid(280.0, -20.0, 20);
        assert_eq!(a, b, "sub-microarcsecond neighbors share a depth-20 trixel");
        assert_ne!(a, c);
    }

    #[test]
    fn trixel_geometry_sane() {
        let t = trixel_of(htmid(45.0, 45.0, 6));
        let c = t.center();
        assert!((c.norm() - 1.0).abs() < 1e-12);
        assert!(t.contains(c), "centroid inside");
        let r = t.bounding_radius();
        // Depth-6 trixels are ~1 degree across.
        assert!(r > 0.0 && r < 0.1, "radius {r} rad out of range");
    }

    #[test]
    fn catalog_depth_resolution() {
        // Depth-20 trixels: ~0.3 arcsec. Two points 1 arcmin apart must
        // land in different trixels.
        let a = htmid(180.0, 0.0, CATALOG_DEPTH);
        let b = htmid(180.0 + 1.0 / 60.0, 0.0, CATALOG_DEPTH);
        assert_ne!(a, b);
    }
}
