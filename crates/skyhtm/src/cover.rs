//! Cone search: covering a spherical cap with trixels.
//!
//! The repository keeps its `htmid` index precisely so that "find all
//! objects within θ of (ra, dec)" becomes a handful of contiguous id-range
//! scans (§4.5.1 keeps this index even during the intensive load because it
//! is "crucial to the scientific research queries"). [`cone_cover`] produces
//! those ranges.

use crate::mesh::{id_range_at_depth, HtmId, Trixel};
use crate::vector::Vec3;

/// A spherical cap: all points within `radius_rad` of `center`.
#[derive(Debug, Clone, Copy)]
pub struct Cone {
    /// Cap center (unit vector).
    pub center: Vec3,
    /// Angular radius in radians.
    pub radius_rad: f64,
}

impl Cone {
    /// A cone from (ra, dec) in degrees and a radius in arcminutes.
    pub fn from_radec_arcmin(ra_deg: f64, dec_deg: f64, radius_arcmin: f64) -> Self {
        Cone {
            center: Vec3::from_radec(ra_deg, dec_deg),
            radius_rad: (radius_arcmin / 60.0).to_radians(),
        }
    }

    /// `true` if the point is inside the cap.
    pub fn contains(&self, p: Vec3) -> bool {
        self.center.angle_to(p) <= self.radius_rad
    }

    /// Relationship of a trixel to the cap.
    fn classify(&self, t: &Trixel) -> Overlap {
        let inside = t.vertices.iter().filter(|v| self.contains(**v)).count();
        if inside == 3 {
            // All vertices inside ⇒ for caps up to a hemisphere the whole
            // (convex) trixel is inside.
            if self.radius_rad <= std::f64::consts::FRAC_PI_2 {
                return Overlap::Full;
            }
        }
        if inside > 0 {
            return Overlap::Partial;
        }
        // No vertex inside: the cap may still poke through an edge or sit
        // wholly inside the trixel.
        if t.contains(self.center) {
            return Overlap::Partial;
        }
        for i in 0..3 {
            let a = t.vertices[i];
            let b = t.vertices[(i + 1) % 3];
            if arc_distance(self.center, a, b) <= self.radius_rad {
                return Overlap::Partial;
            }
        }
        Overlap::None
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Overlap {
    None,
    Partial,
    Full,
}

/// Angular distance (radians) from `p` to the great-circle arc `a`–`b`.
fn arc_distance(p: Vec3, a: Vec3, b: Vec3) -> f64 {
    let n = a.cross(b);
    let n_norm = n.norm();
    if n_norm < 1e-15 {
        // Degenerate arc.
        return p.angle_to(a);
    }
    let n = n * (1.0 / n_norm);
    // Closest point on the full great circle.
    let proj = p - n * n.dot(p);
    if proj.norm() < 1e-15 {
        // p is the circle's pole: everything on the circle is equidistant.
        return std::f64::consts::FRAC_PI_2;
    }
    let q = proj.normalized();
    // q lies within the arc segment iff it sits between a and b along the
    // circle: (a × q)·n ≥ 0 and (q × b)·n ≥ 0.
    let within = a.cross(q).dot(n) >= 0.0 && q.cross(b).dot(n) >= 0.0;
    if within {
        p.angle_to(q)
    } else {
        p.angle_to(a).min(p.angle_to(b))
    }
}

/// Compute a trixel cover of the cone, expanding partial trixels down to
/// `depth`, and return **sorted, disjoint, merged** id ranges at `depth`.
///
/// Every point inside the cone is guaranteed to fall inside one of the
/// returned ranges (the cover may include extra area near the boundary,
/// never less — candidates from the ranges are re-filtered by distance).
pub fn cone_cover(cone: &Cone, depth: u8) -> Vec<(HtmId, HtmId)> {
    cone_cover_at(cone, depth, depth)
}

/// Like [`cone_cover`], but with the subdivision limit (`cover_depth`) and
/// the depth the returned id ranges are expressed at (`id_depth`)
/// decoupled.
///
/// A serving tier pays one index range scan per returned range, so it
/// wants *few* ranges — but the stored `htmid` column is at the catalog
/// depth, so ranges must be expressed *there*. Covering at a shallow
/// `cover_depth` and widening each trixel to its `id_depth` range keeps
/// the range count proportional to the cone's perimeter at the coarse
/// depth (tens, not tens of thousands) while the ranges still select the
/// deep ids exactly. The cover stays a superset: callers re-filter
/// candidates by true angular distance.
///
/// # Panics
/// Panics if `id_depth < cover_depth`.
pub fn cone_cover_at(cone: &Cone, cover_depth: u8, id_depth: u8) -> Vec<(HtmId, HtmId)> {
    assert!(
        id_depth >= cover_depth,
        "id depth {id_depth} must be at least cover depth {cover_depth}"
    );
    let mut ranges: Vec<(HtmId, HtmId)> = Vec::new();
    for root in Trixel::roots() {
        cover_rec(cone, &root, cover_depth, id_depth, &mut ranges);
    }
    ranges.sort_unstable();
    merge_ranges(ranges)
}

fn cover_rec(
    cone: &Cone,
    t: &Trixel,
    cover_depth: u8,
    id_depth: u8,
    out: &mut Vec<(HtmId, HtmId)>,
) {
    match cone.classify(t) {
        Overlap::None => {}
        Overlap::Full => out.push(id_range_at_depth(t.id, id_depth)),
        Overlap::Partial => {
            if t.depth() >= cover_depth {
                out.push(id_range_at_depth(t.id, id_depth));
            } else {
                for child in t.children() {
                    cover_rec(cone, &child, cover_depth, id_depth, out);
                }
            }
        }
    }
}

/// A cone cover as inclusive **signed** key ranges, ready to hand to a
/// database range scan over an integer `htmid` index (`Value::Int` keys).
/// This is the cover→range-scan plumbing the serving tier uses: each
/// `(lo, hi)` pair becomes one `index_range(htmid BETWEEN lo AND hi)`
/// call, and candidates are re-filtered by true angular distance because
/// the cover is a superset near the cone boundary.
pub fn cone_key_ranges(cone: &Cone, depth: u8) -> Vec<(i64, i64)> {
    cone_key_ranges_at(cone, depth, depth)
}

/// [`cone_key_ranges`] with the cover depth and id depth decoupled (see
/// [`cone_cover_at`]): cover shallow, express ranges at the stored
/// catalog depth. This is what keeps a cone search to a handful of range
/// scans instead of tens of thousands.
pub fn cone_key_ranges_at(cone: &Cone, cover_depth: u8, id_depth: u8) -> Vec<(i64, i64)> {
    cone_cover_at(cone, cover_depth, id_depth)
        .into_iter()
        .map(|(lo, hi)| (lo as i64, hi as i64))
        .collect()
}

/// Merge adjacent/overlapping sorted ranges.
fn merge_ranges(ranges: Vec<(HtmId, HtmId)>) -> Vec<(HtmId, HtmId)> {
    let mut out: Vec<(HtmId, HtmId)> = Vec::with_capacity(ranges.len());
    for (lo, hi) in ranges {
        match out.last_mut() {
            Some((_, prev_hi)) if lo <= prev_hi.saturating_add(1) => {
                *prev_hi = (*prev_hi).max(hi);
            }
            _ => out.push((lo, hi)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::htmid;

    #[test]
    fn cover_contains_points_inside_cone() {
        let cone = Cone::from_radec_arcmin(150.0, 22.0, 30.0);
        let depth = 12;
        let ranges = cone_cover(&cone, depth);
        assert!(!ranges.is_empty());
        // Sample points inside the cone: their depth-12 id must be covered.
        for i in 0..200 {
            let ang = i as f64 * 0.031415;
            let frac = (i % 10) as f64 / 10.0;
            let r_arcmin = 30.0 * frac;
            let (dra, ddec) = (
                ang.cos() * r_arcmin / 60.0 / (22.0f64.to_radians().cos()),
                ang.sin() * r_arcmin / 60.0,
            );
            let p = Vec3::from_radec(150.0 + dra, 22.0 + ddec);
            if !cone.contains(p) {
                continue; // tangent-plane approx overshoots at the rim
            }
            let id = htmid(150.0 + dra, 22.0 + ddec, depth);
            let covered = ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&id));
            assert!(covered, "point {i} inside cone but outside cover");
        }
    }

    #[test]
    fn ranges_sorted_disjoint_merged() {
        let cone = Cone::from_radec_arcmin(10.0, -45.0, 60.0);
        let ranges = cone_cover(&cone, 10);
        for w in ranges.windows(2) {
            assert!(w[0].1 < w[1].0, "ranges overlap or touch: {w:?}");
            assert!(w[0].1 + 1 < w[1].0, "adjacent ranges should have merged");
        }
        for &(lo, hi) in &ranges {
            assert!(lo <= hi);
        }
    }

    #[test]
    fn tiny_cone_has_small_cover() {
        let tiny = Cone::from_radec_arcmin(200.0, 10.0, 0.1);
        let ranges = cone_cover(&tiny, 14);
        let area: u64 = ranges.iter().map(|(lo, hi)| hi - lo + 1).sum();
        // A 0.1-arcmin cone at depth 14 should cover a handful of trixels,
        // not thousands.
        assert!(area < 2000, "cover area {area} too large");
        assert!(!ranges.is_empty());
    }

    #[test]
    fn wide_cone_covers_much_of_sphere() {
        let wide = Cone {
            center: Vec3::from_radec(0.0, 90.0),
            radius_rad: std::f64::consts::FRAC_PI_2 * 0.99,
        };
        let ranges = cone_cover(&wide, 4);
        let area: u64 = ranges.iter().map(|(lo, hi)| hi - lo + 1).sum();
        let total = 8u64 * 4u64.pow(4);
        assert!(
            area > total / 3,
            "hemisphere cover {area}/{total} implausibly small"
        );
    }

    #[test]
    fn key_ranges_match_cover_and_stay_positive() {
        let cone = Cone::from_radec_arcmin(150.0, 22.0, 30.0);
        let ranges = cone_cover(&cone, 20);
        let keys = cone_key_ranges(&cone, 20);
        assert_eq!(ranges.len(), keys.len());
        for ((lo, hi), (klo, khi)) in ranges.iter().zip(keys.iter()) {
            assert_eq!(*klo, *lo as i64);
            assert_eq!(*khi, *hi as i64);
            assert!(*klo >= 0, "depth-20 ids fit in i64 without wrapping");
            assert!(klo <= khi);
        }
    }

    #[test]
    fn coarse_cover_is_superset_of_deep_cover_with_far_fewer_ranges() {
        let cone = Cone::from_radec_arcmin(150.2, 0.0, 10.0);
        let deep = cone_cover(&cone, 20);
        let coarse = cone_cover_at(&cone, 8, 20);
        assert!(
            coarse.len() * 20 < deep.len(),
            "coarse cover {} ranges vs deep {} — not coarse enough",
            coarse.len(),
            deep.len()
        );
        // Every deep range must fall inside some coarse range (superset).
        for &(lo, hi) in &deep {
            assert!(
                coarse.iter().any(|&(clo, chi)| clo <= lo && hi <= chi),
                "deep range ({lo}, {hi}) escapes the coarse cover"
            );
        }
        // And points inside the cone are still covered.
        let id = htmid(150.2, 0.0, 20);
        assert!(coarse.iter().any(|&(lo, hi)| (lo..=hi).contains(&id)));
    }

    #[test]
    #[should_panic(expected = "cover depth")]
    fn id_depth_below_cover_depth_panics() {
        let cone = Cone::from_radec_arcmin(0.0, 0.0, 1.0);
        let _ = cone_cover_at(&cone, 12, 8);
    }

    #[test]
    fn merge_ranges_logic() {
        let merged = merge_ranges(vec![(1, 3), (4, 6), (10, 12), (11, 15)]);
        assert_eq!(merged, vec![(1, 6), (10, 15)]);
        assert!(merge_ranges(vec![]).is_empty());
    }

    #[test]
    fn arc_distance_basics() {
        let a = Vec3::from_radec(0.0, 0.0);
        let b = Vec3::from_radec(90.0, 0.0);
        // Point on the arc: zero distance.
        let on = Vec3::from_radec(45.0, 0.0);
        assert!(arc_distance(on, a, b) < 1e-10);
        // Point above the middle of the arc: distance = its declination.
        let above = Vec3::from_radec(45.0, 30.0);
        assert!((arc_distance(above, a, b) - 30f64.to_radians()).abs() < 1e-9);
        // Point beyond an endpoint: distance to the endpoint.
        let beyond = Vec3::from_radec(180.0, 0.0);
        assert!((arc_distance(beyond, a, b) - 90f64.to_radians()).abs() < 1e-9);
    }
}
