//! Celestial coordinate transformations.
//!
//! §3 lists "calculation of values such as the Hierarchical Triangular Mesh
//! ID (htmid) and sky coordinates" among the per-row work the loader does.
//! The catalog pipeline computes galactic coordinates for each object from
//! its J2000 equatorial position; this module provides that rotation (and
//! its inverse), plus small utilities used by the workload generator.

use crate::vector::Vec3;

/// J2000 equatorial → galactic rotation matrix (IAU 1958 definition,
/// J2000 values: pole at RA 192.859508°, Dec 27.128336°, node l = 32.932°).
const EQ_TO_GAL: [[f64; 3]; 3] = [
    [-0.054_875_539_390, -0.873_437_104_725, -0.483_834_991_775],
    [0.494_109_453_633, -0.444_829_594_298, 0.746_982_248_696],
    [-0.867_666_135_681, -0.198_076_389_622, 0.455_983_794_523],
];

fn mat_mul(m: &[[f64; 3]; 3], v: Vec3) -> Vec3 {
    Vec3::new(
        m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
        m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
        m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z,
    )
}

fn mat_mul_t(m: &[[f64; 3]; 3], v: Vec3) -> Vec3 {
    Vec3::new(
        m[0][0] * v.x + m[1][0] * v.y + m[2][0] * v.z,
        m[0][1] * v.x + m[1][1] * v.y + m[2][1] * v.z,
        m[0][2] * v.x + m[1][2] * v.y + m[2][2] * v.z,
    )
}

/// Equatorial (J2000 ra/dec, degrees) → galactic (l/b, degrees).
pub fn equatorial_to_galactic(ra_deg: f64, dec_deg: f64) -> (f64, f64) {
    mat_mul(&EQ_TO_GAL, Vec3::from_radec(ra_deg, dec_deg)).to_radec()
}

/// Galactic (l/b, degrees) → equatorial (J2000 ra/dec, degrees).
pub fn galactic_to_equatorial(l_deg: f64, b_deg: f64) -> (f64, f64) {
    mat_mul_t(&EQ_TO_GAL, Vec3::from_radec(l_deg, b_deg)).to_radec()
}

/// Normalize an RA to `[0, 360)`.
pub fn normalize_ra(ra_deg: f64) -> f64 {
    ra_deg.rem_euclid(360.0)
}

/// Angular separation between two (ra, dec) positions, in degrees.
pub fn separation_deg(ra1: f64, dec1: f64, ra2: f64, dec2: f64) -> f64 {
    Vec3::from_radec(ra1, dec1)
        .angle_to(Vec3::from_radec(ra2, dec2))
        .to_degrees()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn galactic_center_near_sgr_a() {
        // Sgr A*: RA 266.416837°, Dec −29.007811° ⇒ l ≈ 359.944°, b ≈ −0.046°.
        let (l, b) = equatorial_to_galactic(266.416837, -29.007811);
        let dl = (l - 359.944).abs().min((l - 359.944 + 360.0).abs());
        assert!(dl < 0.05, "l = {l}");
        assert!((b + 0.046).abs() < 0.05, "b = {b}");
    }

    #[test]
    fn north_galactic_pole() {
        // NGP: RA 192.859508°, Dec 27.128336° ⇒ b = 90°.
        let (_, b) = equatorial_to_galactic(192.859508, 27.128336);
        assert!((b - 90.0).abs() < 1e-3, "b = {b}");
    }

    #[test]
    fn transform_roundtrips() {
        for &(ra, dec) in &[
            (0.0, 0.0),
            (123.4, 56.7),
            (266.4, -29.0),
            (359.9, 89.0),
            (45.0, -45.0),
        ] {
            let (l, b) = equatorial_to_galactic(ra, dec);
            let (ra2, dec2) = galactic_to_equatorial(l, b);
            assert!(separation_deg(ra, dec, ra2, dec2) < 1e-8, "({ra},{dec})");
        }
    }

    #[test]
    fn rotation_preserves_angles() {
        let (l1, b1) = equatorial_to_galactic(10.0, 20.0);
        let (l2, b2) = equatorial_to_galactic(15.0, 25.0);
        let before = separation_deg(10.0, 20.0, 15.0, 25.0);
        let after = separation_deg(l1, b1, l2, b2);
        assert!((before - after).abs() < 1e-8);
    }

    #[test]
    fn normalize_ra_wraps() {
        assert_eq!(normalize_ra(370.0), 10.0);
        assert_eq!(normalize_ra(-10.0), 350.0);
        assert_eq!(normalize_ra(0.0), 0.0);
        assert_eq!(normalize_ra(720.0), 0.0);
    }

    #[test]
    fn separation_known_values() {
        assert!((separation_deg(0.0, 0.0, 90.0, 0.0) - 90.0).abs() < 1e-10);
        assert!(separation_deg(10.0, 10.0, 10.0, 10.0) < 1e-10);
    }
}
