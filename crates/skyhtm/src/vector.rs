//! Unit vectors on the celestial sphere.

use std::ops::{Add, Mul, Neg, Sub};

/// A 3-vector (usually a unit vector on the celestial sphere).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vec3 {
    /// x component (toward RA 0°, Dec 0°).
    pub x: f64,
    /// y component (toward RA 90°, Dec 0°).
    pub y: f64,
    /// z component (toward the north celestial pole).
    pub z: f64,
}

impl Vec3 {
    /// Construct from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// From right ascension and declination, both in degrees.
    pub fn from_radec(ra_deg: f64, dec_deg: f64) -> Self {
        let ra = ra_deg.to_radians();
        let dec = dec_deg.to_radians();
        Vec3 {
            x: dec.cos() * ra.cos(),
            y: dec.cos() * ra.sin(),
            z: dec.sin(),
        }
    }

    /// Back to `(ra_deg ∈ [0, 360), dec_deg ∈ [-90, 90])`.
    pub fn to_radec(self) -> (f64, f64) {
        let dec = self.z.clamp(-1.0, 1.0).asin().to_degrees();
        let mut ra = self.y.atan2(self.x).to_degrees();
        if ra < 0.0 {
            ra += 360.0;
        }
        // The pole has degenerate RA; normalize to 0.
        if self.x.abs() < 1e-15 && self.y.abs() < 1e-15 {
            ra = 0.0;
        }
        (ra, dec)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Scaled to unit length.
    ///
    /// # Panics
    /// Panics on the zero vector.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        self * (1.0 / n)
    }

    /// The normalized midpoint of two unit vectors.
    pub fn midpoint(self, o: Vec3) -> Vec3 {
        (self + o).normalized()
    }

    /// Angular separation to another unit vector, in radians.
    pub fn angle_to(self, o: Vec3) -> f64 {
        // atan2 form is stable for both tiny and near-π angles.
        self.cross(o).norm().atan2(self.dot(o))
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    #[test]
    fn radec_roundtrip() {
        for &(ra, dec) in &[
            (0.0, 0.0),
            (123.456, 45.0),
            (359.9, -89.9),
            (180.0, 12.3),
            (90.0, -45.0),
        ] {
            let v = Vec3::from_radec(ra, dec);
            assert!((v.norm() - 1.0).abs() < EPS);
            let (ra2, dec2) = v.to_radec();
            assert!((ra - ra2).abs() < 1e-9, "ra {ra} -> {ra2}");
            assert!((dec - dec2).abs() < 1e-9, "dec {dec} -> {dec2}");
        }
    }

    #[test]
    fn poles_have_canonical_ra() {
        let (ra, dec) = Vec3::from_radec(123.0, 90.0).to_radec();
        assert_eq!(ra, 0.0);
        assert!((dec - 90.0).abs() < EPS);
    }

    #[test]
    fn cross_and_dot() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = x.cross(y);
        assert!((z.z - 1.0).abs() < EPS);
        assert!(x.dot(y).abs() < EPS);
    }

    #[test]
    fn angle_to_known_separations() {
        let a = Vec3::from_radec(0.0, 0.0);
        let b = Vec3::from_radec(90.0, 0.0);
        assert!((a.angle_to(b) - std::f64::consts::FRAC_PI_2).abs() < EPS);
        assert!(a.angle_to(a).abs() < EPS);
        let c = Vec3::from_radec(180.0, 0.0);
        assert!((a.angle_to(c) - std::f64::consts::PI).abs() < EPS);
    }

    #[test]
    fn midpoint_is_unit_and_between() {
        let a = Vec3::from_radec(10.0, 0.0);
        let b = Vec3::from_radec(20.0, 0.0);
        let m = a.midpoint(b);
        assert!((m.norm() - 1.0).abs() < EPS);
        let (ra, dec) = m.to_radec();
        assert!((ra - 15.0).abs() < 1e-9);
        assert!(dec.abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn zero_normalize_panics() {
        Vec3::new(0.0, 0.0, 0.0).normalized();
    }
}
