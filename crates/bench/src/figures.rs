//! Experiment runners: one function per paper figure plus the ablations.
//!
//! Single-loader figures (4, 5, 6, 8, 9) run at `TimeScale::ZERO` and
//! report **modeled serial time** converted to paper-equivalent seconds —
//! deterministic and fast. Parallelism-sensitive experiments (Fig. 7, the
//! assignment/device ablations, the headline) run with real scaled waits
//! and report wall-clock-derived paper-equivalent numbers.

use std::sync::Arc;
use std::time::Duration;

use serde::Serialize;

use skycat::gen::CatalogFile;
use skydb::config::DbConfig;
use skydb::server::Server;
use skyloader::{load_catalog_file, load_night, CommitPolicy, ExecMode, LoaderConfig, ModeledCost};
use skysim::cluster::AssignmentPolicy;
use skysim::time::TimeScale;

use crate::setup::{self, OBS_ID, PREPOP_OBS_ID};
use crate::workload::{file_with_rows, night_with_rows, Scale, ROWS_PER_PAPER_MB};

/// One data point.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Point {
    /// X coordinate (size, batch size, loaders, …).
    pub x: f64,
    /// Y coordinate (seconds or MB/s, paper-equivalent).
    pub y: f64,
}

/// One line of a figure.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points in x order.
    pub points: Vec<Point>,
}

/// A reproduced figure.
#[derive(Debug, Clone, Serialize)]
pub struct Figure {
    /// Identifier, e.g. `fig4`.
    pub id: String,
    /// Title matching the paper's caption.
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// The measured series.
    pub series: Vec<Series>,
    /// Derived observations (speedups, optima) for EXPERIMENTS.md.
    pub notes: Vec<String>,
}

impl Figure {
    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        out.push_str(&format!("{:>12}", self.x_label));
        for s in &self.series {
            out.push_str(&format!("  {:>18}", s.label));
        }
        out.push('\n');
        let n = self.series.first().map_or(0, |s| s.points.len());
        for i in 0..n {
            out.push_str(&format!("{:>12.0}", self.series[0].points[i].x));
            for s in &self.series {
                out.push_str(&format!("  {:>18.2}", s.points[i].y));
            }
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out.push_str(&format!("  ({})\n", self.y_label));
        out
    }
}

/// Load one file on a fresh paper server (after `prepare`), returning the
/// modeled cost attributable to that load.
///
/// Costs are read from the server's telemetry registry: a snapshot before
/// the load, a snapshot after, and [`ModeledCost::from_snapshot`] turns
/// the pair into the per-stage delta (the same numbers the old direct
/// probes produced, now via the one observability spine).
fn measure_single(
    db_cfg: DbConfig,
    loader_cfg: &LoaderConfig,
    file: &CatalogFile,
    prepare: impl FnOnce(&Arc<Server>),
) -> (skyloader::FileReport, ModeledCost) {
    let server = setup::server_with(db_cfg);
    prepare(&server);
    let baseline = server.obs_snapshot();
    let session = server.connect();
    let report = load_catalog_file(&session, loader_cfg, file).expect("load");
    server.engine().checkpoint();
    let cost = ModeledCost::from_snapshot(&server.obs_snapshot(), report.client_paging)
        .since(ModeledCost::from_snapshot(&baseline, Duration::ZERO));
    (report, cost)
}

/// The paper's data sizes for Figs. 4 and 8 (MB).
pub const SIZE_SWEEP_MB: [f64; 6] = [200.0, 400.0, 600.0, 800.0, 1000.0, 1200.0];

// ---------------------------------------------------------------- Figure 4

/// Fig. 4: runtime of bulk vs non-bulk loading across data sizes.
pub fn fig4(scale: Scale, sizes_mb: &[f64]) -> Figure {
    let mut bulk = Series {
        label: "Bulk (batch 40)".into(),
        points: Vec::new(),
    };
    let mut non_bulk = Series {
        label: "Non-Bulk".into(),
        points: Vec::new(),
    };
    let mut ratios = Vec::new();
    for (i, &mb) in sizes_mb.iter().enumerate() {
        let rows = scale.rows_for_mb(mb);
        let file = file_with_rows(4000 + i as u64, OBS_ID, rows, 0.0, true);
        let (_, cost_b) = measure_single(
            DbConfig::paper(TimeScale::ZERO),
            &LoaderConfig::paper(),
            &file,
            |_| {},
        );
        let (_, cost_n) = measure_single(
            DbConfig::paper(TimeScale::ZERO),
            &LoaderConfig {
                mode: ExecMode::Singleton,
                ..LoaderConfig::paper()
            },
            &file,
            |_| {},
        );
        let yb = scale.to_paper_seconds(cost_b.total());
        let yn = scale.to_paper_seconds(cost_n.total());
        bulk.points.push(Point { x: mb, y: yb });
        non_bulk.points.push(Point { x: mb, y: yn });
        ratios.push(yn / yb);
    }
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    Figure {
        id: "fig4".into(),
        title: "Runtime of Bulk and Non-Bulk Loading".into(),
        x_label: "MB".into(),
        y_label: "runtime, paper-equivalent seconds".into(),
        series: vec![bulk, non_bulk],
        notes: vec![format!(
            "non-bulk/bulk speedup ranges {min:.1}x–{max:.1}x (paper: 7–9x)"
        )],
    }
}

// ---------------------------------------------------------------- Figure 5

/// Fig. 5: effect of batch size on runtime (200 MB data set).
pub fn fig5(scale: Scale, batch_sizes: &[usize]) -> Figure {
    let rows = scale.rows_for_mb(200.0);
    let file = file_with_rows(5000, OBS_ID, rows, 0.0, true);
    let mut series = Series {
        label: "Bulk".into(),
        points: Vec::new(),
    };
    for &b in batch_sizes {
        let cfg = LoaderConfig::paper().with_batch_size(b);
        let (_, cost) = measure_single(DbConfig::paper(TimeScale::ZERO), &cfg, &file, |_| {});
        series.points.push(Point {
            x: b as f64,
            y: scale.to_paper_seconds(cost.total()),
        });
    }
    let best = series
        .points
        .iter()
        .min_by(|a, b| a.y.total_cmp(&b.y))
        .expect("points");
    Figure {
        id: "fig5".into(),
        title: "Effect of Batch Size on Runtime (loading a 200 MB data set)".into(),
        x_label: "batch".into(),
        y_label: "runtime, paper-equivalent seconds".into(),
        notes: vec![format!(
            "optimum at batch-size {} (paper: 40–50)",
            best.x as usize
        )],
        series: vec![series],
    }
}

// ---------------------------------------------------------------- Figure 6

/// Fig. 6: effect of array size on runtime (200 MB data set).
pub fn fig6(scale: Scale, array_sizes: &[usize]) -> Figure {
    let rows = scale.rows_for_mb(200.0);
    let file = file_with_rows(6000, OBS_ID, rows, 0.0, true);
    let mut series = Series {
        label: "Bulk".into(),
        points: Vec::new(),
    };
    for &a in array_sizes {
        let cfg = LoaderConfig::paper().with_array_size(a);
        let (_, cost) = measure_single(DbConfig::paper(TimeScale::ZERO), &cfg, &file, |_| {});
        series.points.push(Point {
            x: a as f64,
            y: scale.to_paper_seconds(cost.total()),
        });
    }
    let best = series
        .points
        .iter()
        .min_by(|a, b| a.y.total_cmp(&b.y))
        .expect("points");
    Figure {
        id: "fig6".into(),
        title: "Effect of Array Size on Runtime (loading a 200 MB data set)".into(),
        x_label: "array".into(),
        y_label: "runtime, paper-equivalent seconds".into(),
        notes: vec![format!(
            "optimum at array-size {} (paper: ~1000, rising after from client paging)",
            best.x as usize
        )],
        series: vec![series],
    }
}

// ---------------------------------------------------------------- Figure 7

/// Fig. 7: loading throughput vs number of parallel loading processes.
///
/// Each point takes the best of `repeats` runs: wall-clock experiments on a
/// shared host suffer interference spikes, and the minimum makespan is the
/// least-contaminated estimate of the modeled system's behaviour.
pub fn fig7(scale: Scale, max_nodes: usize, total_mb: f64, repeats: usize) -> Figure {
    assert!(scale.time > 0.0, "fig7 needs real scaled waits");
    let total_rows = scale.rows_for_mb(total_mb);
    let files = night_with_rows(7000, OBS_ID, total_rows, 28, 0.0);
    let actual_rows: u64 = files.iter().map(|f| f.expected.total_emitted()).sum();
    let paper_mb = actual_rows as f64 / (ROWS_PER_PAPER_MB * scale.data);
    let mut series = Series {
        label: "Throughput".into(),
        points: Vec::new(),
    };
    let mut lock_waits_per_point = Vec::new();
    for nodes in 1..=max_nodes {
        let (best, waits) = (0..repeats.max(1))
            .map(|_| {
                let server = setup::paper_server(TimeScale::new(scale.time));
                let report = load_night(
                    &server,
                    &files,
                    &LoaderConfig::paper(),
                    nodes,
                    AssignmentPolicy::Dynamic,
                )
                .expect("night load succeeds");
                (report.makespan, server.engine().lock_waits())
            })
            .min_by_key(|(m, _)| *m)
            .expect("at least one repeat");
        lock_waits_per_point.push(waits);
        let paper_seconds = scale.wall_to_paper_seconds(best);
        series.points.push(Point {
            x: nodes as f64,
            y: paper_mb / paper_seconds,
        });
    }
    let best = series
        .points
        .iter()
        .max_by(|a, b| a.y.total_cmp(&b.y))
        .expect("points");
    Figure {
        id: "fig7".into(),
        title: "Effect of Parallelism on Throughput".into(),
        x_label: "loaders".into(),
        y_label: "throughput, paper-equivalent MB/s".into(),
        notes: vec![
            format!(
                "throughput peaks at {} parallel loaders (paper: 6–7, production ran 5)",
                best.x as usize
            ),
            format!(
                "database lock waits escalate with parallelism: {lock_waits_per_point:?} (paper: \
                 'escalating occurrences of database locks')"
            ),
        ],
        series: vec![series],
    }
}

// ---------------------------------------------------------------- Figure 8

/// Fig. 8: effect of maintained indices on bulk-load runtime.
pub fn fig8(scale: Scale, sizes_mb: &[f64]) -> Figure {
    let scenarios: [(&str, &[&str]); 3] = [
        ("No Indices", &[]),
        ("Index on 1 int attr", &["htmid"]),
        ("Index on 3 float attrs", &["ra", "dec", "flux"]),
    ];
    let mut series: Vec<Series> = Vec::new();
    let mut penalties: Vec<(String, f64)> = Vec::new();
    let mut baseline_ys: Vec<f64> = Vec::new();
    for (label, cols) in scenarios {
        let mut s = Series {
            label: label.into(),
            points: Vec::new(),
        };
        for (i, &mb) in sizes_mb.iter().enumerate() {
            let rows = scale.rows_for_mb(mb);
            let file = file_with_rows(8000 + i as u64, OBS_ID, rows, 0.0, true);
            let (_, cost) = measure_single(
                DbConfig::paper(TimeScale::ZERO),
                &LoaderConfig::paper(),
                &file,
                |server| {
                    if !cols.is_empty() {
                        server
                            .engine()
                            .create_index("objects", "bench_idx", cols, false)
                            .expect("index");
                    }
                },
            );
            s.points.push(Point {
                x: mb,
                y: scale.to_paper_seconds(cost.total()),
            });
        }
        if baseline_ys.is_empty() {
            baseline_ys = s.points.iter().map(|p| p.y).collect();
        } else {
            let avg: f64 = s
                .points
                .iter()
                .zip(&baseline_ys)
                .map(|(p, b)| (p.y / b - 1.0) * 100.0)
                .sum::<f64>()
                / s.points.len() as f64;
            penalties.push((label.to_owned(), avg));
        }
        series.push(s);
    }
    let notes = penalties
        .iter()
        .map(|(l, p)| {
            format!("{l}: average +{p:.1}% over no-index (paper: int +1.5%, 3-float +8.5%)")
        })
        .collect();
    Figure {
        id: "fig8".into(),
        title: "Effect of Indices on Runtime".into(),
        x_label: "MB".into(),
        y_label: "runtime, paper-equivalent seconds".into(),
        series,
        notes,
    }
}

// ---------------------------------------------------------------- Figure 9

/// Fig. 9: effect of pre-existing database size on a 200 MB load.
pub fn fig9(scale: Scale, db_sizes_gb: &[f64]) -> Figure {
    // Pre-population uses a deeper data scale so hundreds of paper-GB stay
    // tractable; the measured load keeps the standard scale. What matters
    // is the *presence* of a large table (PK B-tree depth, heap extent),
    // not its byte-for-byte size.
    let prepop_scale = scale.data * 0.2;
    let rows_measured = scale.rows_for_mb(200.0);
    let mut series = Series {
        label: "Bulk (no secondary indices)".into(),
        points: Vec::new(),
    };
    let mut heights = Vec::new();
    for (i, &gb) in db_sizes_gb.iter().enumerate() {
        let prepop_rows = (gb * 1000.0 * ROWS_PER_PAPER_MB * prepop_scale) as u64;
        let file = file_with_rows(9000, OBS_ID, rows_measured, 0.0, true);
        let (_, cost) = measure_single(
            DbConfig::paper(TimeScale::ZERO),
            &LoaderConfig::paper(),
            &file,
            |server| {
                let prepop = night_with_rows(90_000 + i as u64, PREPOP_OBS_ID, prepop_rows, 8, 0.0);
                let session = server.connect();
                for f in &prepop {
                    load_catalog_file(&session, &LoaderConfig::test(), f).expect("prepop");
                }
                let objects = server.engine().table_id("objects").expect("objects");
                heights.push(server.engine().pk_height(objects));
            },
        );
        series.points.push(Point {
            x: gb,
            y: scale.to_paper_seconds(cost.total()),
        });
    }
    let min = series
        .points
        .iter()
        .map(|p| p.y)
        .fold(f64::INFINITY, f64::min);
    let max = series.points.iter().map(|p| p.y).fold(0.0f64, f64::max);
    Figure {
        id: "fig9".into(),
        title: "Effect of Database Size on Runtime (loading a 200 MB data set)".into(),
        x_label: "GB".into(),
        y_label: "runtime, paper-equivalent seconds".into(),
        series: vec![series],
        notes: vec![
            format!(
                "spread (max-min)/min = {:.1}% — flat, as in the paper",
                (max - min) / min * 100.0
            ),
            format!("objects PK B+-tree heights across sizes: {heights:?}"),
        ],
    }
}

// --------------------------------------------------------------- Ablations

/// A1 (§4.2): database calls per row and runtime vs input error rate,
/// including the worst case (reloading duplicates: one call per row).
pub fn ablate_errors(scale: Scale, rates: &[f64]) -> Figure {
    let rows = scale.rows_for_mb(200.0);
    let mut calls = Series {
        label: "DB calls per 1000 rows".into(),
        points: Vec::new(),
    };
    let mut runtime = Series {
        label: "runtime (paper s)".into(),
        points: Vec::new(),
    };
    for &rate in rates {
        let file = file_with_rows(11_000, OBS_ID, rows, rate, true);
        let (report, cost) = measure_single(
            DbConfig::paper(TimeScale::ZERO),
            &LoaderConfig::paper(),
            &file,
            |_| {},
        );
        let total_rows = report.rows_loaded + report.rows_skipped;
        calls.points.push(Point {
            x: rate * 100.0,
            y: report.total_calls() as f64 * 1000.0 / total_rows as f64,
        });
        runtime.points.push(Point {
            x: rate * 100.0,
            y: scale.to_paper_seconds(cost.total()),
        });
    }
    // Worst case: reload the same clean file — every row PK-violates, so
    // bulk loading degenerates to one call per row (§4.2's worst case).
    let file = file_with_rows(11_999, OBS_ID, rows, 0.0, true);
    let server = setup::server_with(DbConfig::paper(TimeScale::ZERO));
    let session = server.connect();
    load_catalog_file(&session, &LoaderConfig::paper(), &file).expect("first load");
    let before = server.engine().stats().snapshot();
    let reload = load_catalog_file(&session, &LoaderConfig::paper(), &file).expect("reload");
    let worst_calls = server.engine().stats().snapshot().batch_calls - before.batch_calls;
    let worst_note = format!(
        "worst case (reload duplicates): {} calls for {} rows = {:.2} calls/row (paper: N calls for N rows)",
        worst_calls,
        reload.rows_skipped,
        worst_calls as f64 / reload.rows_skipped as f64
    );
    Figure {
        id: "ablate-errors".into(),
        title: "Error-rate ablation: recovery cost of skip-and-repack".into(),
        x_label: "err %".into(),
        y_label: "calls per 1000 rows / paper seconds".into(),
        series: vec![calls, runtime],
        notes: vec![worst_note],
    }
}

/// A2 (§4.4): dynamic on-the-fly assignment vs static partitioning over
/// skewed files.
pub fn ablate_assignment(scale: Scale, nodes: usize, total_mb: f64) -> Figure {
    assert!(scale.time > 0.0, "assignment ablation needs real waits");
    let files = night_with_rows(12_000, OBS_ID, scale.rows_for_mb(total_mb), 28, 0.0);
    let mut series = Series {
        label: "makespan (paper s)".into(),
        points: Vec::new(),
    };
    let mut notes = Vec::new();
    let mut results = Vec::new();
    for (i, policy) in [AssignmentPolicy::Dynamic, AssignmentPolicy::Static]
        .into_iter()
        .enumerate()
    {
        let server = setup::paper_server(TimeScale::new(scale.time));
        let report = load_night(&server, &files, &LoaderConfig::paper(), nodes, policy)
            .expect("night load succeeds");
        let paper_s = scale.wall_to_paper_seconds(report.makespan);
        series.points.push(Point {
            x: i as f64,
            y: paper_s,
        });
        notes.push(format!(
            "{policy:?}: makespan {paper_s:.0} paper-s, node imbalance {:.2}",
            report.node_imbalance
        ));
        results.push(paper_s);
    }
    notes.push(format!(
        "dynamic is {:.1}% faster on skewed files",
        (results[1] / results[0] - 1.0) * 100.0
    ));
    Figure {
        id: "ablate-assign".into(),
        title: "File-assignment ablation: dynamic vs static (x=0 dynamic, x=1 static)".into(),
        x_label: "policy".into(),
        y_label: "makespan, paper-equivalent seconds".into(),
        series: vec![series],
        notes,
    }
}

/// A3 (§4.5.2): commit frequency.
pub fn ablate_commit(scale: Scale) -> Figure {
    let rows = scale.rows_for_mb(200.0);
    let file = file_with_rows(13_000, OBS_ID, rows, 0.0, true);
    let policies: [(&str, CommitPolicy); 3] = [
        ("per file", CommitPolicy::PerFile),
        ("per flush cycle", CommitPolicy::PerFlush),
        ("every batch", CommitPolicy::EveryBatches(1)),
    ];
    let mut series = Series {
        label: "runtime (paper s)".into(),
        points: Vec::new(),
    };
    let mut notes = Vec::new();
    for (i, (label, policy)) in policies.into_iter().enumerate() {
        let cfg = LoaderConfig::paper().with_commit_policy(policy);
        let (report, cost) = measure_single(DbConfig::paper(TimeScale::ZERO), &cfg, &file, |_| {});
        let y = scale.to_paper_seconds(cost.total());
        series.points.push(Point { x: i as f64, y });
        notes.push(format!(
            "{label}: {y:.0} paper-s, {} commits",
            report.commits
        ));
    }
    Figure {
        id: "ablate-commit".into(),
        title: "Commit-frequency ablation (x: 0=per file, 1=per flush, 2=every batch)".into(),
        x_label: "policy".into(),
        y_label: "runtime, paper-equivalent seconds".into(),
        series: vec![series],
        notes,
    }
}

/// A4 (§4.5.4): presorted vs shuffled primary keys.
pub fn ablate_presort(scale: Scale) -> Figure {
    let rows = scale.rows_for_mb(200.0);
    let mut series = Series {
        label: "runtime (paper s)".into(),
        points: Vec::new(),
    };
    let mut notes = Vec::new();
    for (i, presorted) in [true, false].into_iter().enumerate() {
        let file = file_with_rows(14_000, OBS_ID, rows, 0.0, presorted);
        let server = setup::server_with(DbConfig::paper(TimeScale::ZERO));
        let baseline = server.obs_snapshot();
        let session = server.connect();
        let report = load_catalog_file(&session, &LoaderConfig::paper(), &file).expect("load");
        server.engine().checkpoint();
        let cost = ModeledCost::from_snapshot(&server.obs_snapshot(), report.client_paging)
            .since(ModeledCost::from_snapshot(&baseline, Duration::ZERO));
        let y = scale.to_paper_seconds(cost.total());
        let idx_writes = server
            .engine()
            .farm()
            .device(skysim::disk::StorageRole::Index)
            .writes();
        series.points.push(Point { x: i as f64, y });
        notes.push(format!(
            "{}: {y:.0} paper-s, {idx_writes} index page writes",
            if presorted { "presorted" } else { "shuffled" }
        ));
    }
    Figure {
        id: "ablate-presort".into(),
        title: "Presort ablation (x: 0=presorted, 1=shuffled keys)".into(),
        x_label: "order".into(),
        y_label: "runtime, paper-equivalent seconds".into(),
        series: vec![series],
        notes,
    }
}

/// A5 (§4.5.5): block-cache size during loading.
pub fn ablate_cache(scale: Scale, cache_pages: &[usize]) -> Figure {
    let rows = scale.rows_for_mb(200.0);
    let file = file_with_rows(15_000, OBS_ID, rows, 0.0, true);
    let mut series = Series {
        label: "runtime (paper s)".into(),
        points: Vec::new(),
    };
    for &pages in cache_pages {
        let db = DbConfig::paper(TimeScale::ZERO).with_cache_pages(pages);
        let (_, cost) = measure_single(db, &LoaderConfig::paper(), &file, |_| {});
        series.points.push(Point {
            x: pages as f64,
            y: scale.to_paper_seconds(cost.total()),
        });
    }
    let first = series.points.first().expect("points").y;
    let last = series.points.last().expect("points").y;
    Figure {
        id: "ablate-cache".into(),
        title: "Data-cache-size ablation: smaller cache loads faster".into(),
        x_label: "pages".into(),
        y_label: "runtime, paper-equivalent seconds".into(),
        series: vec![series],
        notes: vec![format!(
            "largest cache is {:.1}% slower than smallest (writer scans the whole cache)",
            (last / first - 1.0) * 100.0
        )],
    }
}

/// A6 (§4.5.3): one shared disk device vs three separate devices, under
/// parallel load.
pub fn ablate_devices(scale: Scale, nodes: usize, total_mb: f64) -> Figure {
    assert!(scale.time > 0.0, "device ablation needs real waits");
    let files = night_with_rows(16_000, OBS_ID, scale.rows_for_mb(total_mb), 28, 0.0);
    let mut series = Series {
        label: "makespan (paper s)".into(),
        points: Vec::new(),
    };
    let mut notes = Vec::new();
    for (i, separate) in [true, false].into_iter().enumerate() {
        let db = DbConfig::paper(TimeScale::new(scale.time)).with_separate_devices(separate);
        let server = setup::server_with(db);
        let report = load_night(
            &server,
            &files,
            &LoaderConfig::paper(),
            nodes,
            AssignmentPolicy::Dynamic,
        )
        .expect("night load succeeds");
        let y = scale.wall_to_paper_seconds(report.makespan);
        series.points.push(Point { x: i as f64, y });
        notes.push(format!(
            "{}: {y:.0} paper-s",
            if separate {
                "3 separate devices"
            } else {
                "1 shared device"
            }
        ));
    }
    Figure {
        id: "ablate-devices".into(),
        title: "Device-separation ablation (x: 0=separate, 1=shared)".into(),
        x_label: "layout".into(),
        y_label: "makespan, paper-equivalent seconds".into(),
        series: vec![series],
        notes,
    }
}

/// Client parse CPU charged per line in the pipeline ablation.
///
/// The paper never modeled client-side parse CPU (serial SkyLoader hides
/// it inside the load loop), so `LoaderConfig::paper()` keeps it at zero
/// and every other figure is untouched. The ablation opts in with the
/// calibrated per-line flush cost under the paper configs (~430 µs), the
/// balanced point where double buffering has the most to overlap.
pub const PIPELINE_PARSE_COST: Duration = Duration::from_micros(430);

/// Array size for the pipeline ablation.
///
/// A sealed array-set is the pipeline's unit of overlap, so seal
/// granularity caps the gain: at the paper's array size of 1000 a
/// 200 MB-scaled file seals only ~2 segments (and the parallel sweep's
/// smaller files never fill an array at all), leaving nothing to overlap.
/// 250 seals every few frames and keeps both stages busy.
pub const PIPELINE_ARRAY_SIZE: usize = 250;

/// A8 (tentpole): serial vs double-buffered pipelined loading.
///
/// Wall-clock series sweep 1–`max_nodes` loader processes (fig7-style,
/// best of `repeats`); the notes add the deterministic single-node modeled
/// comparison — makespan, stage overlap, and the throughput gain the
/// acceptance criterion keys on.
pub fn ablate_pipeline(scale: Scale, max_nodes: usize, total_mb: f64, repeats: usize) -> Figure {
    assert!(
        scale.time > 0.0,
        "pipeline ablation needs real scaled waits"
    );
    let total_rows = scale.rows_for_mb(total_mb);
    let files = night_with_rows(19_000, OBS_ID, total_rows, 28, 0.0);
    let actual_rows: u64 = files.iter().map(|f| f.expected.total_emitted()).sum();
    let paper_mb = actual_rows as f64 / (ROWS_PER_PAPER_MB * scale.data);
    let base = LoaderConfig::paper()
        .with_parse_cost(PIPELINE_PARSE_COST)
        .with_array_size(PIPELINE_ARRAY_SIZE);
    let configs: [(&str, LoaderConfig); 2] = [
        ("Serial", base.clone()),
        (
            "Pipelined (double)",
            base.with_pipeline(skyloader::PipelineMode::Double),
        ),
    ];
    let mut series: Vec<Series> = Vec::new();
    for (label, cfg) in &configs {
        let mut s = Series {
            label: (*label).into(),
            points: Vec::new(),
        };
        for nodes in 1..=max_nodes {
            let best = (0..repeats.max(1))
                .map(|_| {
                    let server = setup::paper_server(TimeScale::new(scale.time));
                    let report = load_night(&server, &files, cfg, nodes, AssignmentPolicy::Dynamic)
                        .expect("night load succeeds");
                    report.makespan
                })
                .min()
                .expect("at least one repeat");
            s.points.push(Point {
                x: nodes as f64,
                y: paper_mb / scale.wall_to_paper_seconds(best),
            });
        }
        series.push(s);
    }

    // Deterministic single-node modeled comparison (TimeScale::ZERO): the
    // stage accounting makes the overlap and the throughput gain exact.
    let file = file_with_rows(19_500, OBS_ID, scale.rows_for_mb(200.0), 0.0, true);
    let modeled = |cfg: &LoaderConfig| {
        let (report, _) = measure_single(DbConfig::paper(TimeScale::ZERO), cfg, &file, |_| {});
        report
    };
    let m_serial = modeled(&configs[0].1);
    let m_piped = modeled(&configs[1].1);
    assert_eq!(
        m_serial.rows_loaded, m_piped.rows_loaded,
        "modes must load the same rows"
    );
    let gain = m_piped.modeled_throughput_mb_per_s() / m_serial.modeled_throughput_mb_per_s();
    let wall_gain: Vec<f64> = series[0]
        .points
        .iter()
        .zip(&series[1].points)
        .map(|(s, p)| p.y / s.y)
        .collect();
    Figure {
        id: "ablate-pipeline".into(),
        title: "Pipelined-loading ablation: serial vs double-buffered parse/flush overlap".into(),
        x_label: "loaders".into(),
        y_label: "throughput, paper-equivalent MB/s".into(),
        series,
        notes: vec![
            format!(
                "single-node modeled (200 MB): serial makespan {:.2?} vs pipelined {:.2?}; \
                 overlap hides {:.2?} of {:.2?} parse time",
                m_serial.modeled_makespan,
                m_piped.modeled_makespan,
                m_piped.stage_overlap,
                m_piped.stage_parse,
            ),
            format!(
                "single-node modeled throughput gain {gain:.2}x (acceptance floor 1.20x); \
                 identical rows loaded ({})",
                m_piped.rows_loaded
            ),
            format!(
                "wall-clock gain by node count: {:?}",
                wall_gain
                    .iter()
                    .map(|g| (g * 100.0).round() / 100.0)
                    .collect::<Vec<_>>()
            ),
        ],
    }
}

/// E7 (§6): SkyLoader's single-pass loading vs an SDSS-style two-phase
/// pipeline (convert → Task DB → validate → Publish DB) — the comparison
/// the paper wanted but could not run.
pub fn ablate_two_phase(scale: Scale, sizes_mb: &[f64]) -> Figure {
    let mut single = Series {
        label: "SkyLoader single-pass".into(),
        points: Vec::new(),
    };
    let mut two_phase = Series {
        label: "SDSS-style two-phase".into(),
        points: Vec::new(),
    };
    let mut ratios = Vec::new();
    for (i, &mb) in sizes_mb.iter().enumerate() {
        let rows = scale.rows_for_mb(mb);
        let file = file_with_rows(18_000 + i as u64, OBS_ID, rows, 0.02, true);

        let (_, cost_single) = measure_single(
            DbConfig::paper(TimeScale::ZERO),
            &LoaderConfig::paper(),
            &file,
            |_| {},
        );
        let y_single = scale.to_paper_seconds(cost_single.total());

        // Two phase: pay both the Task server and the Publish server.
        let task = skyloader::start_task_server(DbConfig::paper(TimeScale::ZERO));
        let publish = setup::server_with(DbConfig::paper(TimeScale::ZERO));
        let publish_baseline = publish.obs_snapshot();
        skyloader::load_two_phase(&task, &publish, &LoaderConfig::paper(), &file)
            .expect("two-phase load");
        task.engine().checkpoint();
        publish.engine().checkpoint();
        let cost_two = ModeledCost::from_snapshot(&task.obs_snapshot(), Duration::ZERO).total()
            + ModeledCost::from_snapshot(&publish.obs_snapshot(), Duration::ZERO)
                .since(ModeledCost::from_snapshot(
                    &publish_baseline,
                    Duration::ZERO,
                ))
                .total();
        let y_two = scale.to_paper_seconds(cost_two);

        single.points.push(Point { x: mb, y: y_single });
        two_phase.points.push(Point { x: mb, y: y_two });
        ratios.push(y_two / y_single);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    Figure {
        id: "ablate-two-phase".into(),
        title: "Single-pass vs SDSS-style two-phase loading (the §6 comparison)".into(),
        x_label: "MB".into(),
        y_label: "runtime, paper-equivalent seconds".into(),
        series: vec![single, two_phase],
        notes: vec![format!(
            "two-phase averages {avg:.2}x the single-pass cost — §6's hypothesis ('we believe \
             our approach can be more efficient') holds on this substrate"
        )],
    }
}

// ------------------------------------------------------------ Interference

/// E8 (serving tier): fast-queue tail latency vs concurrent users under
/// increasing nightly-ingest pressure — the CasJobs-style interference
/// curve. One series per loader-fleet size; x is the number of query
/// users, y the fast-queue wall-clock p99. Wall time is the right axis
/// here: the interference *is* the CPU-gate and lock contention between
/// readers and the flushing fleet, which modeled serial cost cannot see.
/// The notes carry the modeled (seed-deterministic) percentiles that the
/// CI latency gate keys on.
pub fn interference(
    seed: u64,
    user_counts: &[usize],
    fleet_sizes: &[usize],
    quick: bool,
) -> Figure {
    use skyloader::{run_serve_load, ServeLoadConfig};
    let mut series: Vec<Series> = Vec::new();
    let mut notes: Vec<String> = Vec::new();
    let queries = if quick { 10 } else { 25 };
    let mut baseline_p99_ms: Option<f64> = None;
    let mut worst_p99_ms: f64 = 0.0;
    for &nodes in fleet_sizes {
        let label = match nodes {
            0 => "serve-only baseline".to_owned(),
            1 => "1 loader node".to_owned(),
            n => format!("{n} loader nodes"),
        };
        let mut s = Series {
            label,
            points: Vec::new(),
        };
        for &users in user_counts {
            let out = run_serve_load(
                &ServeLoadConfig::default()
                    .with_seed(seed)
                    .with_users(users)
                    .with_queries_per_user(queries)
                    .with_ingest_nodes(nodes)
                    .with_quick(quick),
            )
            .expect("serve-under-ingest run succeeds");
            let r = out.report;
            assert!(
                nodes == 0 || r.ingest_complete,
                "ingest must finish under query load"
            );
            let p99_ms = r.fast_wall.p99_us as f64 / 1000.0;
            s.points.push(Point {
                x: users as f64,
                y: p99_ms,
            });
            if users == *user_counts.last().expect("user counts") {
                if nodes == 0 {
                    baseline_p99_ms = Some(p99_ms);
                } else {
                    worst_p99_ms = worst_p99_ms.max(p99_ms);
                }
                notes.push(format!(
                    "{} users × {nodes} loaders: fast wall p50/p99 {}/{} us, \
                     modeled p50/p99 {}/{} us (seed-deterministic), \
                     {} demoted, {} slow jobs, ingest {} rows",
                    users,
                    r.fast_wall.p50_us,
                    r.fast_wall.p99_us,
                    r.fast_modeled.p50_us,
                    r.fast_modeled.p99_us,
                    r.fast_demoted,
                    r.slow_completed,
                    r.ingest_rows,
                ));
            }
        }
        series.push(s);
    }
    if let Some(base) = baseline_p99_ms {
        if base > 0.0 && worst_p99_ms > 0.0 {
            notes.push(format!(
                "ingest pressure multiplies fast-queue wall p99 by {:.2}x at max users \
                 (readers share the CPU gate and locks with the flushing fleet)",
                worst_p99_ms / base
            ));
        }
    }
    Figure {
        id: "interference".into(),
        title: "Query/ingest interference: fast-queue p99 vs users under a loading fleet".into(),
        x_label: "users".into(),
        y_label: "fast-queue wall p99, ms".into(),
        series,
        notes,
    }
}

// ---------------------------------------------------------------- Freshness

/// A11 (live ingest): per-batch freshness lag vs ingest pressure.
///
/// A night of micro-batches arrives on a Poisson schedule whose mean gap
/// sweeps the x axis (tighter gap = more pressure); each batch is loaded
/// as one journaled micro-batch and the freshness clock measures
/// arrival → committed-visible. At `TimeScale::ZERO` the clock runs on
/// modeled costs, so the curve is seed-deterministic: when batches land
/// faster than the loader drains them the queueing lag compounds and the
/// tail percentiles lift off the per-batch service floor.
pub fn freshness(scale: Scale, seed: u64, gaps_ms: &[u64], total_mb: f64) -> Figure {
    use skyloader::{run_live, LiveConfig};
    let files = night_with_rows(21_000, OBS_ID, scale.rows_for_mb(total_mb), 12, 0.0);
    let mut p50 = Series {
        label: "freshness p50 (ms)".into(),
        points: Vec::new(),
    };
    let mut p99 = Series {
        label: "freshness p99 (ms)".into(),
        points: Vec::new(),
    };
    let mut notes = Vec::new();
    let slo = Duration::from_millis(1000);
    for &gap in gaps_ms {
        let server = setup::paper_server(TimeScale::ZERO);
        let mut cfg = LiveConfig::test(seed);
        cfg.nodes = 3;
        cfg.mean_interarrival = Duration::from_millis(gap);
        cfg.slo_budget = slo;
        let r = run_live(&server, &files, &cfg, None).expect("live night succeeds");
        assert_eq!(r.failed_files, 0, "live night must complete");
        p50.points.push(Point {
            x: gap as f64,
            y: r.freshness.p50_us as f64 / 1000.0,
        });
        p99.points.push(Point {
            x: gap as f64,
            y: r.freshness.p99_us as f64 / 1000.0,
        });
        notes.push(format!(
            "gap {gap} ms: {} batches, freshness p50/p99/max {}/{}/{} us, \
             {} of {} over the {} ms SLO",
            r.batches,
            r.freshness.p50_us,
            r.freshness.p99_us,
            r.freshness.max_us,
            r.slo_violations,
            r.batches,
            slo.as_millis(),
        ));
    }
    let first = p99.points.first().expect("points").y;
    let last = p99.points.last().expect("points").y;
    if last > 0.0 {
        notes.push(format!(
            "tightening the arrival gap from {} ms to {} ms multiplies freshness p99 by {:.1}x \
             (queueing above the per-batch service floor)",
            gaps_ms.last().expect("gaps"),
            gaps_ms.first().expect("gaps"),
            first / last
        ));
    }
    Figure {
        id: "freshness".into(),
        title: "Live-ingest freshness vs arrival pressure (arrival → committed-visible)".into(),
        x_label: "gap ms".into(),
        y_label: "freshness lag, modeled ms".into(),
        series: vec![p50, p99],
        notes,
    }
}

// ---------------------------------------------------------------- Headline

/// E0: the paper's headline — the same observation loaded by the untuned
/// baseline (singleton inserts) and by the full SkyLoader framework
/// (bulk + 5-way parallel + tuning), both at 5 loaders as in production.
pub fn headline(scale: Scale, total_mb: f64) -> Figure {
    assert!(scale.time > 0.0, "headline needs real waits");
    let files = night_with_rows(17_000, OBS_ID, scale.rows_for_mb(total_mb), 28, 0.0);
    let ts = TimeScale::new(scale.time);

    let naive_server = setup::paper_server(ts);
    let naive_cfg = LoaderConfig {
        mode: ExecMode::Singleton,
        ..LoaderConfig::paper()
    };
    let naive = load_night(
        &naive_server,
        &files,
        &naive_cfg,
        5,
        AssignmentPolicy::Dynamic,
    )
    .expect("night load succeeds");

    let tuned_server = setup::paper_server(ts);
    let tuned = load_night(
        &tuned_server,
        &files,
        &LoaderConfig::paper(),
        5,
        AssignmentPolicy::Dynamic,
    )
    .expect("night load succeeds");

    let naive_s = scale.wall_to_paper_seconds(naive.makespan);
    let tuned_s = scale.wall_to_paper_seconds(tuned.makespan);
    let series = Series {
        label: "makespan (paper s)".into(),
        points: vec![Point { x: 0.0, y: naive_s }, Point { x: 1.0, y: tuned_s }],
    };
    Figure {
        id: "headline".into(),
        title: "Headline: untuned singleton loading vs the SkyLoader framework".into(),
        x_label: "config".into(),
        y_label: "makespan, paper-equivalent seconds (x: 0=naive, 1=SkyLoader)".into(),
        series: vec![series],
        notes: vec![format!(
            "speedup {0:.1}x — the paper reports a 40 GB night going from >20 h to <3 h (≥6.7x)",
            naive_s / tuned_s
        )],
    }
}

// ---------------------------------------------------------------- Scale-out

/// A13 (sharding): ingest throughput and read tail vs declination-zone
/// shard count.
///
/// The same night is routed across N zone shards and loaded through the
/// sharded loader while a reader issues scatter-gather scans through the
/// serve tier. Rows/sec counts unique loadable rows over the ingest wall
/// clock, so the replication cost of broadcasting the shared dimension
/// tables to every shard — and the per-zone commit fan-out — shows up
/// honestly as overhead; the read series shows what the scatter-gather
/// fan-out (one sub-query per covering zone, merged) does to the
/// fast-queue tail.
pub fn scaleout(seed: u64, shard_counts: &[u32], files: usize) -> Figure {
    use skycat::gen::{aggregate_expected, generate_observation, GenConfig};
    use skydb::serve::{FastOutcome, Query, QueryService, ServeConfig};
    use skydb::shard::{GatherPolicy, ShardGroup, ZoneMap};
    use skyloader::{
        fresh_catalog_server, ShardLoadConfig, ShardLoader, ShardRouter, ZONED_TABLES,
    };
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    let night = generate_observation(&GenConfig::night(seed, OBS_ID).with_files(files));
    let expected = aggregate_expected(&night).total_loadable();
    let mut throughput = Series {
        label: "ingest krows/s".into(),
        points: Vec::new(),
    };
    let mut read_p99 = Series {
        label: "fast scan p99 ms".into(),
        points: Vec::new(),
    };
    let mut notes = Vec::new();
    for &shards in shard_counts {
        let obs = Arc::new(skyloader::skyobs::Registry::new());
        // The generator's four ccds emit decs over [-1.2, 1.2).
        let map = ZoneMap::band(shards, -1.2, 1.2);
        let servers = (0..shards)
            .map(|_| {
                fresh_catalog_server(DbConfig::paper(TimeScale::ZERO), &obs)
                    .expect("shard server starts")
            })
            .collect();
        let group = Arc::new(ShardGroup::new(
            map,
            servers,
            &ZONED_TABLES,
            GatherPolicy::default(),
            &obs,
        ));
        let svc = Arc::new(QueryService::start_sharded(
            group.clone(),
            ServeConfig::default().with_fast_deadline(Duration::from_secs(3600)),
            &obs,
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let (svc, stop) = (svc.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut lat_us: Vec<u64> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    let q = Query::Scan {
                        table: "objects".into(),
                        filter: None,
                    };
                    if matches!(svc.fast_query("bench", q), Ok(FastOutcome::Done(_))) {
                        lat_us.push(t0.elapsed().as_micros() as u64);
                    }
                }
                lat_us
            })
        };

        let mut router = ShardRouter::new(map);
        let loader = ShardLoader::new(group, ShardLoadConfig::default(), &obs);
        let t0 = Instant::now();
        let report = loader
            .load_files(&mut router, &night, None)
            .expect("sharded load succeeds");
        let wall = t0.elapsed();
        stop.store(true, Ordering::Relaxed);
        let mut lat_us = reader.join().expect("reader joins");
        lat_us.sort_unstable();
        let p99_us = if lat_us.is_empty() {
            0
        } else {
            lat_us[(lat_us.len() - 1).min(lat_us.len() * 99 / 100)]
        };

        let krows_per_s = expected as f64 / wall.as_secs_f64() / 1000.0;
        throughput.points.push(Point {
            x: shards as f64,
            y: krows_per_s,
        });
        read_p99.points.push(Point {
            x: shards as f64,
            y: p99_us as f64 / 1000.0,
        });
        notes.push(format!(
            "{shards} shard(s): {} unique rows in {:.2?} ({:.1} krows/s), \
             {} row(s) applied across shards, {} scatter-gather scan(s) during ingest, p99 {} us",
            expected,
            wall,
            krows_per_s,
            report.rows_applied,
            lat_us.len(),
            p99_us,
        ));
    }
    if throughput.points.len() >= 2 {
        let first = throughput.points.first().expect("points").y;
        let last = throughput.points.last().expect("points").y;
        if first > 0.0 {
            notes.push(format!(
                "ingest throughput at {} shards is {:.2}x the single-shard rate on one box \
                 (replicated-table broadcast and per-zone commit fan-out trade against \
                 smaller per-zone indexes); the read tail grows with the scatter-gather \
                 fan-out, and both are the price of per-zone failover isolation",
                shard_counts.last().expect("counts"),
                last / first
            ));
        }
    }
    Figure {
        id: "scaleout".into(),
        title: "Declination-zone scale-out: ingest rate and scatter-gather read tail vs shards"
            .into(),
        x_label: "shards".into(),
        y_label: "krows/s (ingest) · ms (read p99), per series".into(),
        series: vec![throughput, read_p99],
        notes,
    }
}
