//! Regenerate the paper's evaluation: `repro [experiment …]`.
//!
//! Experiments: `fig4 fig5 fig6 fig7 fig8 fig9 ablate-errors ablate-assign
//! ablate-commit ablate-presort ablate-cache ablate-devices
//! ablate-two-phase ablate-pipeline interference freshness scaleout
//! headline`, or
//! `all` (default), or `quick` (reduced scale smoke run).
//!
//! Results print as text tables and are also written as JSON under
//! `repro-results/`.

use std::time::Instant;

use skyloader_bench::figures::{self, Figure};
use skyloader_bench::workload::Scale;

struct Plan {
    scale: Scale,
    wall_time_scale: f64,
    fig7_mb: f64,
    headline_mb: f64,
    quick: bool,
}

impl Plan {
    fn full() -> Plan {
        Plan {
            scale: Scale::full(),
            wall_time_scale: 0.3,
            fig7_mb: 1120.0,
            headline_mb: 560.0,
            quick: false,
        }
    }

    fn quick() -> Plan {
        Plan {
            scale: Scale::quick(),
            wall_time_scale: 0.3,
            fig7_mb: 560.0,
            headline_mb: 140.0,
            quick: true,
        }
    }

    fn wall_scale(&self) -> Scale {
        Scale {
            data: self.scale.data,
            time: self.wall_time_scale,
        }
    }
}

const ALL: [&str; 18] = [
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "ablate-errors",
    "ablate-assign",
    "ablate-commit",
    "ablate-presort",
    "ablate-cache",
    "ablate-devices",
    "ablate-two-phase",
    "ablate-pipeline",
    "interference",
    "freshness",
    "scaleout",
    "headline",
];

fn run_one(name: &str, plan: &Plan) -> Option<Figure> {
    let scale = plan.scale;
    let fig = match name {
        "fig4" => figures::fig4(scale, &figures::SIZE_SWEEP_MB),
        "fig5" => figures::fig5(scale, &[10, 20, 30, 40, 50, 60]),
        "fig6" => figures::fig6(scale, &[250, 500, 750, 1000, 1250, 1500]),
        "fig7" => figures::fig7(plan.wall_scale(), 8, plan.fig7_mb, 3),
        "fig8" => figures::fig8(scale, &figures::SIZE_SWEEP_MB),
        "fig9" => figures::fig9(scale, &[50.0, 100.0, 150.0, 200.0, 250.0, 300.0]),
        "ablate-errors" => figures::ablate_errors(scale, &[0.0, 0.01, 0.05, 0.1, 0.2]),
        "ablate-assign" => figures::ablate_assignment(plan.wall_scale(), 4, 280.0),
        "ablate-commit" => figures::ablate_commit(scale),
        "ablate-presort" => figures::ablate_presort(scale),
        "ablate-cache" => figures::ablate_cache(scale, &[512, 2048, 8192, 32768]),
        "ablate-devices" => figures::ablate_devices(plan.wall_scale(), 5, 280.0),
        "ablate-two-phase" => figures::ablate_two_phase(scale, &[200.0, 600.0, 1200.0]),
        "ablate-pipeline" => figures::ablate_pipeline(plan.wall_scale(), 8, 280.0, 2),
        "interference" => {
            if plan.quick {
                figures::interference(2005, &[1, 2, 4], &[0, 2], true)
            } else {
                figures::interference(2005, &[1, 2, 4, 8], &[0, 2, 4], false)
            }
        }
        // Gap sweep brackets the ~0.5 s modeled per-batch service time:
        // below it lag compounds batch over batch, above it freshness sits
        // on the service floor.
        "freshness" => {
            if plan.quick {
                figures::freshness(scale, 2005, &[250, 1000], 30.0)
            } else {
                figures::freshness(scale, 2005, &[100, 250, 500, 1000, 2000], 100.0)
            }
        }
        "scaleout" => {
            if plan.quick {
                figures::scaleout(2005, &[1, 2, 3], 3)
            } else {
                figures::scaleout(2005, &[1, 2, 4, 8], 8)
            }
        }
        "headline" => figures::headline(plan.wall_scale(), plan.headline_mb),
        other => {
            eprintln!("unknown experiment: {other}");
            eprintln!("known: {} all quick", ALL.join(" "));
            return None;
        }
    };
    Some(fig)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (plan, requested): (Plan, Vec<String>) = if args.iter().any(|a| a == "quick") {
        (
            Plan::quick(),
            args.iter().filter(|a| *a != "quick").cloned().collect(),
        )
    } else {
        (Plan::full(), args.clone())
    };
    let requested: Vec<String> = if requested.is_empty() || requested.iter().any(|a| a == "all") {
        ALL.iter().map(|s| s.to_string()).collect()
    } else {
        requested
    };

    std::fs::create_dir_all("repro-results").ok();
    println!(
        "SkyLoader reproduction harness — data scale 1:{:.0}, wall-time scale {:.2}",
        1.0 / plan.scale.data,
        plan.wall_time_scale
    );
    println!();

    for name in &requested {
        let start = Instant::now();
        let Some(fig) = run_one(name, &plan) else {
            std::process::exit(2);
        };
        println!("{}", fig.render());
        println!("  [{name} completed in {:.1?}]", start.elapsed());
        println!();
        let json = serde_json::to_string_pretty(&fig).expect("figure serializes");
        let path = format!("repro-results/{name}.json");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write {path}: {e}");
        }
    }
}
