//! Server construction for experiments.

use std::sync::Arc;

use skydb::config::DbConfig;
use skydb::server::Server;
use skysim::time::TimeScale;

/// Observation id used by single-observation workloads.
pub const OBS_ID: i64 = 100;

/// Observation id used for database pre-population (Fig. 9).
pub const PREPOP_OBS_ID: i64 = 200;

/// A fresh paper-environment server with the 23-table schema, static
/// dimensions, and the standard observation headers seeded.
pub fn paper_server(scale: TimeScale) -> Arc<Server> {
    server_with(DbConfig::paper(scale))
}

/// A fresh server from an explicit configuration, schema + seeds included.
pub fn server_with(cfg: DbConfig) -> Arc<Server> {
    let server = Server::start(cfg);
    skycat::create_all(server.engine()).expect("schema");
    skycat::seed_static(server.engine()).expect("static seed");
    skycat::seed_observation(server.engine(), 1, OBS_ID).expect("obs seed");
    skycat::seed_observation(server.engine(), 2, PREPOP_OBS_ID).expect("prepop obs seed");
    server
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_server_is_ready_to_load() {
        let s = paper_server(TimeScale::ZERO);
        assert_eq!(s.engine().table_count(), 23);
        let obs = s.engine().table_id("observations").unwrap();
        assert_eq!(s.engine().row_count(obs), 2);
    }
}
