//! # skyloader-bench — the evaluation harness
//!
//! Regenerates every figure of the SC 2005 SkyLoader evaluation (§5,
//! Figs. 4–9), the headline 20h→3h claim, and six ablations of the §4.2 /
//! §4.4 / §4.5 design choices. See `DESIGN.md` for the experiment index
//! and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! Two entry points share the runners in [`figures`]:
//!
//! * the `repro` binary (`cargo run -p skyloader-bench --bin repro --release`)
//!   runs the full-scale sweeps and prints paper-style tables;
//! * the Criterion benches (`cargo bench`) run representative points at a
//!   reduced scale for regression tracking.

#![warn(missing_docs)]

pub mod figures;
pub mod setup;
pub mod workload;

pub use figures::{Figure, Point, Series};
pub use workload::Scale;
