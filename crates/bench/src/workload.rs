//! Workload sizing: mapping the paper's data sizes to generated catalogs.
//!
//! The paper reports data sizes in megabytes of catalog data. We cannot
//! know their exact row widths, but the text (§2, §4.1) implies dense ASCII
//! catalogs; we adopt **4000 rows per paper-MB** (≈250 bytes/row) as the
//! conversion and scale every experiment down by a configurable
//! `data_scale` (default 1:100), reporting results in *paper-equivalent*
//! units. Because the cost model's constants are calibrated in real 2005
//! terms, `modeled_time / data_scale` is directly comparable to the
//! paper's reported seconds.

use skycat::gen::{generate_file, generate_observation, CatalogFile, GenConfig};

/// Catalog rows per paper megabyte (≈250 ASCII bytes per row).
pub const ROWS_PER_PAPER_MB: f64 = 4000.0;

/// Experiment scaling knobs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Fraction of the paper's data volume actually generated.
    pub data: f64,
    /// Fraction of modeled waits actually slept (wall-clock experiments).
    pub time: f64,
}

impl Scale {
    /// The repro harness default: 1% of the data, waits off (modeled time).
    pub fn full() -> Scale {
        Scale {
            data: 0.01,
            time: 0.0,
        }
    }

    /// A small scale for Criterion benches and smoke tests.
    pub fn quick() -> Scale {
        Scale {
            data: 0.002,
            time: 0.0,
        }
    }

    /// Rows representing `paper_mb` megabytes at this scale.
    pub fn rows_for_mb(&self, paper_mb: f64) -> u64 {
        (paper_mb * ROWS_PER_PAPER_MB * self.data)
            .round()
            .max(300.0) as u64
    }

    /// Convert a modeled duration to paper-equivalent seconds.
    pub fn to_paper_seconds(&self, modeled: std::time::Duration) -> f64 {
        modeled.as_secs_f64() / self.data
    }

    /// Convert a *wall-clock* duration from a run whose waits were scaled
    /// by `self.time` to paper-equivalent seconds.
    pub fn wall_to_paper_seconds(&self, wall: std::time::Duration) -> f64 {
        assert!(
            self.time > 0.0,
            "wall conversion needs a nonzero time scale"
        );
        wall.as_secs_f64() / self.time / self.data
    }
}

/// Rows per generated frame with the default 50 objects/frame
/// (1 FRM + 4 APR + FST + AST + ZPT + QCH + 50×(OBJ + 4 FNG) + ~5 OFL).
const ROWS_PER_FRAME: f64 = 264.0;

/// Generate a single catalog file of approximately `rows` rows.
///
/// `size_skew` is disabled so sizing is exact; object counts still vary
/// per frame.
pub fn file_with_rows(
    seed: u64,
    obs_id: i64,
    rows: u64,
    error_rate: f64,
    presorted: bool,
) -> CatalogFile {
    let ccds = 4usize;
    let frames_per_ccd = (((rows as f64 / ccds as f64) - 2.0) / ROWS_PER_FRAME)
        .round()
        .max(1.0) as usize;
    let cfg = GenConfig {
        seed,
        obs_id,
        files: 1,
        ccds_per_file: ccds,
        frames_per_ccd,
        objects_per_frame: 50,
        error_rate,
        presorted,
        size_skew: 0.0,
    };
    generate_file(&cfg, 0)
}

/// Generate an observation's worth of files totalling ~`total_rows`, with
/// the paper's 28-file layout and size skew.
pub fn night_with_rows(
    seed: u64,
    obs_id: i64,
    total_rows: u64,
    files: usize,
    error_rate: f64,
) -> Vec<CatalogFile> {
    let ccds = 4usize;
    let per_file = (total_rows as f64 / files as f64).max(ROWS_PER_FRAME * 4.0);
    let frames_per_ccd = ((per_file / ccds as f64) / ROWS_PER_FRAME).round().max(1.0) as usize;
    let cfg = GenConfig {
        seed,
        obs_id,
        files,
        ccds_per_file: ccds,
        frames_per_ccd,
        objects_per_frame: 50,
        error_rate,
        presorted: true,
        size_skew: 0.4,
    };
    generate_observation(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_is_close_to_target() {
        for target in [2000u64, 8000, 48_000] {
            let f = file_with_rows(1, 100, target, 0.0, true);
            let got = f.expected.total_emitted();
            let ratio = got as f64 / target as f64;
            assert!(
                (0.7..1.3).contains(&ratio),
                "target {target} produced {got} rows"
            );
        }
    }

    #[test]
    fn scale_conversions() {
        let s = Scale::full();
        assert_eq!(s.rows_for_mb(200.0), 8000);
        let paper_s = s.to_paper_seconds(std::time::Duration::from_secs(3));
        assert!((paper_s - 300.0).abs() < 1e-9);
    }

    #[test]
    fn night_splits_rows_across_files() {
        let files = night_with_rows(2, 100, 20_000, 8, 0.0);
        assert_eq!(files.len(), 8);
        let total: u64 = files.iter().map(|f| f.expected.total_emitted()).sum();
        assert!(
            (0.6..1.5).contains(&(total as f64 / 20_000.0)),
            "total {total}"
        );
    }

    #[test]
    #[should_panic(expected = "nonzero time scale")]
    fn wall_conversion_requires_time_scale() {
        Scale::full().wall_to_paper_seconds(std::time::Duration::from_secs(1));
    }
}
