//! Criterion bench for paper Fig. 5: effect of batch size on load cost.
//!
//! Full-scale series: `repro -- fig5`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use skydb::config::DbConfig;
use skyloader::{load_catalog_file, LoaderConfig};
use skyloader_bench::setup::{server_with, OBS_ID};
use skyloader_bench::workload::file_with_rows;
use skysim::time::TimeScale;

fn bench_fig5(c: &mut Criterion) {
    let file = file_with_rows(5000, OBS_ID, 1500, 0.0, true);
    let mut group = c.benchmark_group("fig5_batch_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for batch in [10usize, 40, 60] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter_batched(
                || server_with(DbConfig::paper(TimeScale::ZERO)),
                |server| {
                    let session = server.connect();
                    let cfg = LoaderConfig::paper().with_batch_size(batch);
                    let report = load_catalog_file(&session, &cfg, &file).expect("load");
                    black_box(report.batch_calls)
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
