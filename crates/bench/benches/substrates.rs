//! Microbenches for the substrates the loader sits on: B+-tree
//! maintenance, HTM computation, wire marshaling, and the catalog
//! parse/transform pipeline — the per-row work of paper §3.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use bytes::BytesMut;
use skycat::format::parse_line;
use skycat::transform::transform;
use skydb::btree::BPlusTree;
use skydb::schema::TableId;
use skydb::value::{Key, Value};
use skydb::wire::Request;
use skyhtm::{htmid, CATALOG_DEPTH};

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    group.bench_function("insert_1k_sequential", |b| {
        b.iter_batched(
            || BPlusTree::new(true, 64),
            |mut tree| {
                for i in 0..1000i64 {
                    tree.insert(Key(vec![Value::Int(i)]), i as u64).unwrap();
                }
                black_box(tree.len())
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("insert_1k_random", |b| {
        let mut rng = skysim::rng::SplitMix64::new(7);
        let mut keys: Vec<i64> = (0..1000).collect();
        rng.shuffle(&mut keys);
        b.iter_batched(
            || (BPlusTree::new(true, 64), keys.clone()),
            |(mut tree, keys)| {
                for i in keys {
                    tree.insert(Key(vec![Value::Int(i)]), i as u64).unwrap();
                }
                black_box(tree.len())
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("bulk_build_10k", |b| {
        let entries: Vec<(Key, u64)> = (0..10_000i64)
            .map(|i| (Key(vec![Value::Int(i)]), i as u64))
            .collect();
        b.iter(|| {
            let tree = BPlusTree::bulk_build(true, 64, entries.clone());
            black_box(tree.height())
        })
    });
    group.bench_function("point_lookup", |b| {
        let mut tree = BPlusTree::new(true, 64);
        for i in 0..100_000i64 {
            tree.insert(Key(vec![Value::Int(i)]), i as u64).unwrap();
        }
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 37_501) % 100_000;
            black_box(tree.get_first(&Key(vec![Value::Int(i)])))
        })
    });
    group.finish();
}

fn bench_htm(c: &mut Criterion) {
    let mut group = c.benchmark_group("htm");
    group.bench_function("htmid_depth20", |b| {
        let mut ra = 0.0f64;
        b.iter(|| {
            ra = (ra + 0.37) % 360.0;
            black_box(htmid(ra, 12.3, CATALOG_DEPTH))
        })
    });
    group.bench_function("cone_cover_30arcmin_depth12", |b| {
        let cone = skyhtm::Cone::from_radec_arcmin(150.0, 22.0, 30.0);
        b.iter(|| black_box(skyhtm::cone_cover(&cone, 12).len()))
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let row: Vec<Value> = vec![
        Value::Int(1),
        Value::Int(2),
        Value::Float(180.0),
        Value::Float(0.5),
        Value::Int(0x7fff_ffff),
        Value::Float(0.0),
        Value::Float(0.0),
        Value::Float(18.5),
        Value::Null,
        Value::Float(1234.0),
        Value::Null,
        Value::Null,
        Value::Null,
        Value::Null,
        Value::Int(0),
        Value::Float(1.0),
        Value::Float(2.0),
    ];
    let request = Request::InsertBatch {
        table: TableId(8),
        rows: vec![row; 40],
        fence: None,
    };
    let mut group = c.benchmark_group("wire");
    group.bench_function("encode_decode_batch40", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(8192);
            request.encode(&mut buf);
            let mut rd = buf.freeze();
            black_box(Request::decode(&mut rd).unwrap())
        })
    });
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let obj_line = "OBJ|50000|100|180.05|0.5|2345|4.8|18912|43|1.3|0.12|30.0|0|512.2|1033.8";
    let mut group = c.benchmark_group("pipeline");
    group.bench_function("parse_transform_object_row", |b| {
        b.iter(|| {
            let rec = parse_line(black_box(obj_line)).unwrap();
            black_box(transform(&rec).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_btree, bench_htm, bench_wire, bench_pipeline);
criterion_main!(benches);
