//! Criterion bench for paper Fig. 6: effect of array size on load cost.
//!
//! Full-scale series: `repro -- fig6`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use skydb::config::DbConfig;
use skyloader::{load_catalog_file, LoaderConfig};
use skyloader_bench::setup::{server_with, OBS_ID};
use skyloader_bench::workload::file_with_rows;
use skysim::time::TimeScale;

fn bench_fig6(c: &mut Criterion) {
    let file = file_with_rows(6000, OBS_ID, 2000, 0.0, true);
    let mut group = c.benchmark_group("fig6_array_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for array in [250usize, 1000, 1500] {
        group.bench_with_input(BenchmarkId::from_parameter(array), &array, |b, &array| {
            b.iter_batched(
                || server_with(DbConfig::paper(TimeScale::ZERO)),
                |server| {
                    let session = server.connect();
                    let cfg = LoaderConfig::paper().with_array_size(array);
                    let report = load_catalog_file(&session, &cfg, &file).expect("load");
                    black_box(report.cycles)
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
