//! Criterion bench for paper Fig. 9: load cost vs pre-existing DB size.
//!
//! Full-scale series: `repro -- fig9`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use skydb::config::DbConfig;
use skyloader::{load_catalog_file, LoaderConfig};
use skyloader_bench::setup::{server_with, OBS_ID, PREPOP_OBS_ID};
use skyloader_bench::workload::{file_with_rows, night_with_rows};
use skysim::time::TimeScale;

fn bench_fig9(c: &mut Criterion) {
    let file = file_with_rows(9000, OBS_ID, 1500, 0.0, true);
    let mut group = c.benchmark_group("fig9_db_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for prepop_rows in [0u64, 60_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(prepop_rows),
            &prepop_rows,
            |b, &prepop_rows| {
                b.iter_batched(
                    || {
                        let server = server_with(DbConfig::paper(TimeScale::ZERO));
                        if prepop_rows > 0 {
                            let prepop =
                                night_with_rows(90_000, PREPOP_OBS_ID, prepop_rows, 4, 0.0);
                            let session = server.connect();
                            for f in &prepop {
                                load_catalog_file(&session, &LoaderConfig::test(), f)
                                    .expect("prepop");
                            }
                        }
                        server
                    },
                    |server| {
                        let session = server.connect();
                        let report = load_catalog_file(&session, &LoaderConfig::paper(), &file)
                            .expect("load");
                        black_box(report.rows_loaded)
                    },
                    BatchSize::PerIteration,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
