//! Criterion benches for the design-choice ablations called out in
//! DESIGN.md: error recovery (A1), commit frequency (A3), presorting (A4),
//! cache sizing (A5) and pipelined loading (A8). Full-scale tables:
//! `repro -- ablate-*`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use skydb::config::DbConfig;
use skyloader::{load_catalog_file, CommitPolicy, LoaderConfig, PipelineMode};
use skyloader_bench::setup::{server_with, OBS_ID};
use skyloader_bench::workload::file_with_rows;
use skysim::time::TimeScale;

fn bench_error_rates(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_error_rate");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for pct in [0u32, 10] {
        let file = file_with_rows(11_000, OBS_ID, 1500, pct as f64 / 100.0, true);
        group.bench_with_input(BenchmarkId::from_parameter(pct), &file, |b, file| {
            b.iter_batched(
                || server_with(DbConfig::paper(TimeScale::ZERO)),
                |server| {
                    let session = server.connect();
                    let report =
                        load_catalog_file(&session, &LoaderConfig::paper(), file).expect("load");
                    black_box((report.rows_loaded, report.rows_skipped))
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_commit_policy(c: &mut Criterion) {
    let file = file_with_rows(13_000, OBS_ID, 1500, 0.0, true);
    let mut group = c.benchmark_group("ablate_commit_policy");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let policies = [
        ("per_file", CommitPolicy::PerFile),
        ("every_batch", CommitPolicy::EveryBatches(1)),
    ];
    for (name, policy) in policies {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            b.iter_batched(
                || server_with(DbConfig::paper(TimeScale::ZERO)),
                |server| {
                    let session = server.connect();
                    let cfg = LoaderConfig::paper().with_commit_policy(policy);
                    let report = load_catalog_file(&session, &cfg, &file).expect("load");
                    black_box(report.commits)
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_presort(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_presort");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, presorted) in [("presorted", true), ("shuffled", false)] {
        let file = file_with_rows(14_000, OBS_ID, 1500, 0.0, presorted);
        group.bench_with_input(BenchmarkId::from_parameter(name), &file, |b, file| {
            b.iter_batched(
                || server_with(DbConfig::paper(TimeScale::ZERO)),
                |server| {
                    let session = server.connect();
                    let report =
                        load_catalog_file(&session, &LoaderConfig::paper(), file).expect("load");
                    black_box(report.rows_loaded)
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_cache_size(c: &mut Criterion) {
    let file = file_with_rows(15_000, OBS_ID, 1500, 0.0, true);
    let mut group = c.benchmark_group("ablate_cache_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for pages in [512usize, 32_768] {
        group.bench_with_input(BenchmarkId::from_parameter(pages), &pages, |b, &pages| {
            b.iter_batched(
                || server_with(DbConfig::paper(TimeScale::ZERO).with_cache_pages(pages)),
                |server| {
                    let session = server.connect();
                    let report =
                        load_catalog_file(&session, &LoaderConfig::paper(), &file).expect("load");
                    black_box(report.rows_loaded)
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let file = file_with_rows(19_000, OBS_ID, 1500, 0.0, true);
    let mut group = c.benchmark_group("ablate_pipeline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let modes = [
        ("serial", PipelineMode::Off),
        ("double", PipelineMode::Double),
    ];
    for (name, mode) in modes {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            b.iter_batched(
                || server_with(DbConfig::paper(TimeScale::ZERO)),
                |server| {
                    let session = server.connect();
                    let cfg = LoaderConfig::paper()
                        .with_parse_cost(skyloader_bench::figures::PIPELINE_PARSE_COST)
                        .with_array_size(skyloader_bench::figures::PIPELINE_ARRAY_SIZE)
                        .with_pipeline(mode);
                    let report = load_catalog_file(&session, &cfg, &file).expect("load");
                    black_box(report.modeled_makespan)
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_error_rates,
    bench_commit_policy,
    bench_presort,
    bench_cache_size,
    bench_pipeline
);
criterion_main!(benches);
