//! Criterion bench for paper Fig. 8: index maintenance drag on loading.
//!
//! Full-scale series: `repro -- fig8`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use skydb::config::DbConfig;
use skyloader::{load_catalog_file, LoaderConfig};
use skyloader_bench::setup::{server_with, OBS_ID};
use skyloader_bench::workload::file_with_rows;
use skysim::time::TimeScale;

fn bench_fig8(c: &mut Criterion) {
    let file = file_with_rows(8000, OBS_ID, 1500, 0.0, true);
    let scenarios: [(&str, &[&str]); 3] = [
        ("no_index", &[]),
        ("int_index", &["htmid"]),
        ("float3_index", &["ra", "dec", "flux"]),
    ];
    let mut group = c.benchmark_group("fig8_indices");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, cols) in scenarios {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cols, |b, cols| {
            b.iter_batched(
                || {
                    let server = server_with(DbConfig::paper(TimeScale::ZERO));
                    if !cols.is_empty() {
                        server
                            .engine()
                            .create_index("objects", "bench_idx", cols, false)
                            .expect("index");
                    }
                    server
                },
                |server| {
                    let session = server.connect();
                    let report =
                        load_catalog_file(&session, &LoaderConfig::paper(), &file).expect("load");
                    black_box(report.rows_loaded)
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
