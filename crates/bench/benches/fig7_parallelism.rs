//! Criterion bench for paper Fig. 7: parallel loading throughput.
//!
//! Runs a miniature night with real scaled waits at 1, 4 and 8 loader
//! nodes. Full-scale series: `repro -- fig7`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use skyloader::{load_night, LoaderConfig};
use skyloader_bench::setup::{paper_server, OBS_ID};
use skyloader_bench::workload::night_with_rows;
use skysim::cluster::AssignmentPolicy;
use skysim::time::TimeScale;

fn bench_fig7(c: &mut Criterion) {
    let files = night_with_rows(7000, OBS_ID, 6000, 14, 0.0);
    let mut group = c.benchmark_group("fig7_parallelism");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for nodes in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            b.iter_batched(
                || paper_server(TimeScale::new(0.02)),
                |server| {
                    let report = load_night(
                        &server,
                        &files,
                        &LoaderConfig::paper(),
                        nodes,
                        AssignmentPolicy::Dynamic,
                    )
                    .expect("night load succeeds");
                    black_box(report.rows_loaded())
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
