//! Criterion bench for paper Fig. 4: bulk vs non-bulk loading.
//!
//! Measures the real end-to-end cost of loading a small catalog file with
//! batched inserts (the paper's algorithm, batch 40) versus one call per
//! row. The full-scale series with modeled 2005 hardware comes from
//! `cargo run -p skyloader-bench --bin repro -- fig4`; this bench tracks
//! regressions in the actual code paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use skydb::config::DbConfig;
use skyloader::{load_catalog_file, ExecMode, LoaderConfig};
use skyloader_bench::setup::{server_with, OBS_ID};
use skyloader_bench::workload::file_with_rows;

fn bench_fig4(c: &mut Criterion) {
    let file = file_with_rows(4000, OBS_ID, 1500, 0.0, true);
    let mut group = c.benchmark_group("fig4_bulk_vs_nonbulk");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("bulk_batch40", |b| {
        b.iter_batched(
            || server_with(DbConfig::paper(skysim::time::TimeScale::ZERO)),
            |server| {
                let session = server.connect();
                let report =
                    load_catalog_file(&session, &LoaderConfig::paper(), &file).expect("load");
                black_box(report.rows_loaded)
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function("non_bulk", |b| {
        b.iter_batched(
            || server_with(DbConfig::paper(skysim::time::TimeScale::ZERO)),
            |server| {
                let session = server.connect();
                let cfg = LoaderConfig {
                    mode: ExecMode::Singleton,
                    ..LoaderConfig::paper()
                };
                let report = load_catalog_file(&session, &cfg, &file).expect("load");
                black_box(report.rows_loaded)
            },
            BatchSize::PerIteration,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
