//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The real serde streams values through a visitor-based data model; this
//! stand-in routes everything through an owned, JSON-shaped [`Content`] tree,
//! which is all the workspace needs (its only format is `serde_json`). The
//! trait *shapes* match real serde where the workspace relies on them:
//!
//! - `Serialize::serialize<S: Serializer>(&self, S) -> Result<S::Ok, S::Error>`
//! - `Deserialize::deserialize<D: Deserializer<'de>>(D) -> Result<Self, D::Error>`
//! - `#[serde(with = "module")]`, `#[serde(default)]`, and derive macros
//!
//! so hand-written `mod duration_micros`-style adapters compile unchanged.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value: the single data model every serializer and
/// deserializer in this workspace speaks.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always < 0; non-negatives normalize to `U64`).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object, in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The object entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }
}

/// Serialization half of the data model.
pub mod ser {
    use super::Content;
    use std::fmt::Display;

    /// Errors a [`Serializer`] may produce.
    pub trait Error: Sized + Display {
        /// Build an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A sink that consumes one [`Content`] tree.
    pub trait Serializer: Sized {
        /// Value returned on success.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Consume the fully-built content tree.
        fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;
    }

    /// The error type of [`ContentSerializer`] and content conversions.
    #[derive(Debug, Clone)]
    pub struct ContentError(pub String);

    impl Display for ContentError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for ContentError {}

    impl Error for ContentError {
        fn custom<T: Display>(msg: T) -> Self {
            ContentError(msg.to_string())
        }
    }

    /// A serializer whose output *is* the content tree.
    pub struct ContentSerializer;

    impl Serializer for ContentSerializer {
        type Ok = Content;
        type Error = ContentError;
        fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
            Ok(content)
        }
    }

    /// Serialize any value into a [`Content`] tree.
    pub fn to_content<T: super::Serialize + ?Sized>(value: &T) -> Result<Content, ContentError> {
        value.serialize(ContentSerializer)
    }
}

/// Deserialization half of the data model.
pub mod de {
    use super::Content;
    use std::fmt::Display;

    /// Errors a [`Deserializer`] may produce.
    pub trait Error: Sized + Display {
        /// Build an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A source that yields one [`Content`] tree.
    pub trait Deserializer<'de>: Sized {
        /// Error type.
        type Error: Error;
        /// Produce the content tree.
        fn content(self) -> Result<Content, Self::Error>;
    }

    pub use super::ser::ContentError;

    impl Error for ContentError {
        fn custom<T: Display>(msg: T) -> Self {
            ContentError(msg.to_string())
        }
    }

    /// A deserializer reading from a borrowed [`Content`] tree.
    pub struct ContentDeserializer<'a>(&'a Content);

    impl<'a> ContentDeserializer<'a> {
        /// Wrap a content node.
        pub fn new(content: &'a Content) -> Self {
            ContentDeserializer(content)
        }
    }

    impl<'de, 'a> Deserializer<'de> for ContentDeserializer<'a> {
        type Error = ContentError;
        fn content(self) -> Result<Content, ContentError> {
            Ok(self.0.clone())
        }
    }

    /// Deserialize any owned value out of a [`Content`] node.
    pub fn from_content<T>(content: &Content) -> Result<T, ContentError>
    where
        T: for<'de> super::Deserialize<'de>,
    {
        T::deserialize(ContentDeserializer(content))
    }

    /// Look up a struct field by name in decoded object entries.
    pub fn field<'a>(entries: &'a [(String, Content)], name: &str) -> Option<&'a Content> {
        entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

pub use de::Deserializer;
pub use ser::Serializer;

use de::Error as _;
use ser::Error as _;

/// A value that can be turned into the data model.
pub trait Serialize {
    /// Feed this value to `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A value that can be rebuilt from the data model.
pub trait Deserialize<'de>: Sized {
    /// Rebuild a value from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for the std types this workspace serializes.
// ---------------------------------------------------------------------------

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::U64(*self as u64))
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                let content = if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                };
                serializer.serialize_content(content)
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::F64(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::F64(f64::from(*self)))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Bool(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.to_owned()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.clone()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(serializer),
            None => serializer.serialize_content(Content::Null),
        }
    }
}

fn collect_seq<S, I>(serializer: S, items: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    I: IntoIterator,
    I::Item: Serialize,
{
    let mut seq = Vec::new();
    for item in items {
        seq.push(ser::to_content(&item).map_err(S::Error::custom)?);
    }
    serializer.serialize_content(Content::Seq(seq))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(serializer, self.iter())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(serializer, self.iter())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let seq = vec![
            ser::to_content(&self.0).map_err(S::Error::custom)?,
            ser::to_content(&self.1).map_err(S::Error::custom)?,
        ];
        serializer.serialize_content(Content::Seq(seq))
    }
}

fn collect_map<'a, S, K, V, I>(serializer: S, entries: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: IntoIterator<Item = (&'a K, &'a V)>,
{
    let mut map = Vec::new();
    for (k, v) in entries {
        let key = match ser::to_content(k).map_err(S::Error::custom)? {
            Content::Str(s) => s,
            _ => return Err(S::Error::custom("map key must serialize to a string")),
        };
        map.push((key, ser::to_content(v).map_err(S::Error::custom)?));
    }
    serializer.serialize_content(Content::Map(map))
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_map(serializer, self.iter())
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Sort keys by their serialized form so output is deterministic.
        let mut entries: Vec<(Content, &V)> = Vec::new();
        for (k, v) in self {
            entries.push((ser::to_content(k).map_err(S::Error::custom)?, v));
        }
        entries.sort_by(|(a, _), (b, _)| match (a, b) {
            (Content::Str(x), Content::Str(y)) => x.cmp(y),
            _ => std::cmp::Ordering::Equal,
        });
        let mut map = Vec::new();
        for (key, v) in entries {
            let Content::Str(key) = key else {
                return Err(S::Error::custom("map key must serialize to a string"));
            };
            map.push((key, ser::to_content(v).map_err(S::Error::custom)?));
        }
        serializer.serialize_content(Content::Map(map))
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for the std types this workspace deserializes.
// ---------------------------------------------------------------------------

macro_rules! deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.content()? {
                    Content::U64(v) => <$t>::try_from(v).map_err(|_| {
                        D::Error::custom(format!("integer {v} out of range for {}", stringify!($t)))
                    }),
                    other => Err(D::Error::custom(format!(
                        "expected an unsigned integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! deserialize_signed {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let wide: i64 = match deserializer.content()? {
                    Content::U64(v) => i64::try_from(v)
                        .map_err(|_| D::Error::custom(format!("integer {v} out of range")))?,
                    Content::I64(v) => v,
                    other => {
                        return Err(D::Error::custom(format!(
                            "expected an integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    D::Error::custom(format!("integer {wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
deserialize_signed!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            other => Err(D::Error::custom(format!(
                "expected a number, found {other:?}"
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Bool(v) => Ok(v),
            other => Err(D::Error::custom(format!(
                "expected a boolean, found {other:?}"
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Str(v) => Ok(v),
            other => Err(D::Error::custom(format!(
                "expected a string, found {other:?}"
            ))),
        }
    }
}

impl<'de, T> Deserialize<'de> for Option<T>
where
    T: for<'a> Deserialize<'a>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Null => Ok(None),
            other => de::from_content(&other).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<'de, T> Deserialize<'de> for Vec<T>
where
    T: for<'a> Deserialize<'a>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Seq(items) => items
                .iter()
                .map(|c| de::from_content(c).map_err(D::Error::custom))
                .collect(),
            other => Err(D::Error::custom(format!(
                "expected an array, found {other:?}"
            ))),
        }
    }
}

impl<'de, V> Deserialize<'de> for std::collections::BTreeMap<String, V>
where
    V: for<'a> Deserialize<'a>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), de::from_content(v).map_err(D::Error::custom)?)))
                .collect(),
            other => Err(D::Error::custom(format!(
                "expected an object, found {other:?}"
            ))),
        }
    }
}

impl<'de, V> Deserialize<'de> for std::collections::HashMap<String, V>
where
    V: for<'a> Deserialize<'a>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.content()? {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), de::from_content(v).map_err(D::Error::custom)?)))
                .collect(),
            other => Err(D::Error::custom(format!(
                "expected an object, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_through_content() {
        let c = ser::to_content(&42u64).unwrap();
        assert_eq!(c, Content::U64(42));
        let back: u64 = de::from_content(&c).unwrap();
        assert_eq!(back, 42);

        let c = ser::to_content(&-3i64).unwrap();
        assert_eq!(c, Content::I64(-3));
        let back: i64 = de::from_content(&c).unwrap();
        assert_eq!(back, -3);
    }

    #[test]
    fn maps_require_string_keys() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        let c = ser::to_content(&m).unwrap();
        assert_eq!(c, Content::Map(vec![("a".to_string(), Content::U64(1))]));

        let mut bad = std::collections::BTreeMap::new();
        bad.insert(1u64, 2u64);
        assert!(ser::to_content(&bad).is_err());
    }

    #[test]
    fn option_null_roundtrip() {
        let c = ser::to_content(&Option::<u64>::None).unwrap();
        assert_eq!(c, Content::Null);
        let back: Option<u64> = de::from_content(&c).unwrap();
        assert_eq!(back, None);
        let c = ser::to_content(&Some(9u64)).unwrap();
        let back: Option<u64> = de::from_content(&c).unwrap();
        assert_eq!(back, Some(9));
    }
}
