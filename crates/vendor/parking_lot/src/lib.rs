//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build environment for this repository is fully hermetic (no registry
//! access), so the handful of external crates the workspace depends on are
//! vendored as minimal API-compatible implementations. This one provides the
//! `parking_lot` subset the workspace actually uses — `Mutex`, `RwLock` and
//! `Condvar` with non-poisoning, guard-returning `lock()`/`read()`/`write()`
//! — implemented over `std::sync`. Poisoned locks are transparently
//! recovered, matching `parking_lot`'s no-poisoning semantics.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]. The `Option` is only ever `None` transiently
/// inside [`Condvar::wait`], which must move the underlying std guard.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire exclusive access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_one();
        }
        h.join().unwrap();
    }
}
