//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the bench-definition API this workspace's `benches/` use
//! (`criterion_group!`, `criterion_main!`, groups, `iter` / `iter_batched`)
//! backed by a small median-of-samples timer. No statistics, plots or
//! comparison against saved baselines — just enough to run `cargo bench`
//! and keep the bench targets compiling under `clippy --all-targets`.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// How `iter_batched` amortizes setup cost. The stand-in runs one setup per
/// routine invocation regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// One setup per iteration.
    PerIteration,
    /// Small input: the real crate batches many iterations per setup.
    SmallInput,
    /// Large input: the real crate batches few iterations per setup.
    LargeInput,
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify a benchmark by its parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Identify a benchmark by function name and parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

/// Runs one benchmark body and records timings.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.recorded.push(start.elapsed());
            drop(out);
        }
    }

    /// Time `routine` with a fresh un-timed `setup` product per sample.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.recorded.push(start.elapsed());
            drop(out);
        }
    }

    fn median(&mut self) -> Duration {
        if self.recorded.is_empty() {
            return Duration::ZERO;
        }
        self.recorded.sort();
        self.recorded[self.recorded.len() / 2]
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_one(name, 10, f);
    }
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; sampling is bounded by sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Run a parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        recorded: Vec::with_capacity(samples),
    };
    f(&mut bencher);
    let n = bencher.recorded.len();
    println!(
        "bench {label}: median {:?} over {n} samples",
        bencher.median()
    );
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` for a bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_every_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut calls = 0;
        group.sample_size(5).bench_function("count", |b| {
            b.iter_batched(|| 2, |x| x * 2, BatchSize::PerIteration);
            calls += 1;
        });
        group.finish();
        assert_eq!(calls, 1);
    }
}
