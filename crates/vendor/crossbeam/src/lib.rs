//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! Provides `queue::SegQueue` — the only crossbeam type this workspace uses —
//! as a thread-safe FIFO over `Mutex<VecDeque>`. The real SegQueue is
//! lock-free; this stand-in trades that for zero dependencies while keeping
//! the same API and ordering semantics.

#![warn(missing_docs)]

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded multi-producer multi-consumer FIFO queue.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Create an empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Append an element at the back.
        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        /// Remove the front element, or `None` if the queue is empty.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;

    #[test]
    fn fifo_order() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_producers_drain_fully() {
        let q = std::sync::Arc::new(SegQueue::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let q = std::sync::Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..100 {
                        q.push(t * 100 + i);
                    }
                });
            }
        });
        let mut seen = 0;
        while q.pop().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 400);
    }
}
