//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` / `prop_assert*` / `prop_assume!` / `prop_oneof!` macros,
//! `Strategy` with `prop_map` / `prop_recursive` / `boxed`, range and
//! `any::<T>()` strategies, `prop::collection::{vec, btree_set}`,
//! `prop::sample::select`, and regex-subset string strategies.
//!
//! Differences from the real crate: case generation is deterministic (seeded
//! from the test name, so CI runs are reproducible) and failing cases are
//! reported without shrinking.

pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, TestRng, Union};

use std::fmt;

/// Per-test configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case is invalid input (does not count against `cases`).
    Reject(String),
    /// The property is violated.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail<T: fmt::Display>(msg: T) -> Self {
        TestCaseError::Fail(msg.to_string())
    }

    /// Build a rejection.
    pub fn reject<T: fmt::Display>(msg: T) -> Self {
        TestCaseError::Reject(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Everything a property-test file needs, matching `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

/// Collection strategies (`prop::collection::...`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy producing `Vec`s of `element` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy producing `BTreeSet`s of `element`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Collisions may leave the set under-full; bound the retries so
            // narrow element domains still terminate.
            for _ in 0..target.saturating_mul(4) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// Sampling strategies (`prop::sample::...`).
pub mod sample {
    use crate::strategy::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed list of options.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    /// See [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T>(Vec<T>);

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// The property-test harness macro. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `#[test] fn name(args) {}`
/// items whose arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let strat = ($($strat,)+);
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(64);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                let values = $crate::Strategy::generate(&strat, &mut rng);
                let shown = format!("{:?}", values);
                let ($($pat,)+) = values;
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed on case {} with input {}: {}",
                            stringify!($name), accepted, shown, msg
                        );
                    }
                }
            }
            assert!(
                accepted >= config.cases,
                "property `{}` rejected too many cases ({} accepted of {} wanted)",
                stringify!($name), accepted, config.cases
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left, right, format!($($fmt)*)
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Choose between strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}
