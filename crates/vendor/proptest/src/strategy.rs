//! Strategies: deterministic value generators with the `proptest` trait shape.

use std::fmt;
use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Deterministic RNG (SplitMix64)
// ---------------------------------------------------------------------------

/// The generator backing all strategies. Deterministic: seeded from the test
/// name so every run and machine sees the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategy trait, boxing, combinators
// ---------------------------------------------------------------------------

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build recursive values: apply `recurse` up to `depth` times, starting
    /// from `self` as the leaf strategy. `desired_size` and `expected_branch`
    /// are accepted for API compatibility; depth alone bounds generation.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut level = self.boxed();
        for _ in 0..depth {
            level = recurse(level).boxed();
        }
        level
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T: fmt::Debug> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! requires positive total weight");
        Union { arms, total }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(u64::from(self.total)) as u32;
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Ranges and tuples
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo + off) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// Build that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy behind `any::<T>()` for primitives.
#[derive(Clone, Copy, Debug)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}
any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

impl Strategy for AnyPrimitive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Mix in the IEEE specials often enough to exercise NaN handling.
        if rng.below(16) == 0 {
            const SPECIALS: [f64; 6] = [
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                0.0,
                -0.0,
                f64::MIN_POSITIVE,
            ];
            SPECIALS[rng.below(SPECIALS.len() as u64) as usize]
        } else {
            // Random bit patterns cover normals, subnormals, NaN payloads.
            f64::from_bits(rng.next_u64())
        }
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrimitive<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

// ---------------------------------------------------------------------------
// Collection sizes
// ---------------------------------------------------------------------------

/// A collection size: exact or drawn from a range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    pub(crate) fn pick(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            return self.lo;
        }
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

// ---------------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------------

/// String literals act as regex-subset strategies, like in real proptest.
/// Supported syntax: literal chars, `.`, escaped chars, `[...]` classes with
/// ranges, `(...)` groups, and `{n}` / `{m,n}` repetition.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_regex(self);
        let mut out = String::new();
        gen_seq(&atoms, rng, &mut out);
        out
    }
}

#[derive(Debug, Clone)]
enum Atom {
    Lit(char),
    Dot,
    Class(Vec<(char, char)>),
    Group(Vec<Rep>),
}

#[derive(Debug, Clone)]
struct Rep {
    atom: Atom,
    min: u32,
    max: u32, // inclusive
}

fn gen_seq(seq: &[Rep], rng: &mut TestRng, out: &mut String) {
    for rep in seq {
        let n = if rep.max > rep.min {
            rep.min + rng.below(u64::from(rep.max - rep.min + 1)) as u32
        } else {
            rep.min
        };
        for _ in 0..n {
            gen_atom(&rep.atom, rng, out);
        }
    }
}

fn gen_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
    match atom {
        Atom::Lit(c) => out.push(*c),
        Atom::Dot => {
            // Like regex `.`: anything but newline. Mostly printable ASCII,
            // with occasional tab / multi-byte characters.
            let c = if rng.below(16) == 0 {
                const ODD: [char; 4] = ['\t', '\u{e9}', '\u{3bb}', '\u{1f52d}'];
                ODD[rng.below(ODD.len() as u64) as usize]
            } else {
                char::from(b' ' + rng.below(95) as u8)
            };
            out.push(c);
        }
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| u64::from(*hi as u32 - *lo as u32 + 1))
                .sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let span = u64::from(*hi as u32 - *lo as u32 + 1);
                if pick < span {
                    out.push(char::from_u32(*lo as u32 + pick as u32).expect("valid class char"));
                    return;
                }
                pick -= span;
            }
            unreachable!("pick is within total");
        }
        Atom::Group(seq) => gen_seq(seq, rng, out),
    }
}

fn parse_regex(pattern: &str) -> Vec<Rep> {
    let chars: Vec<char> = pattern.chars().collect();
    let (seq, consumed) = parse_seq(&chars, 0);
    assert!(
        consumed == chars.len(),
        "unsupported regex `{pattern}` (stopped at char {consumed})"
    );
    seq
}

fn parse_seq(chars: &[char], mut i: usize) -> (Vec<Rep>, usize) {
    let mut seq = Vec::new();
    while i < chars.len() && chars[i] != ')' {
        let atom;
        match chars[i] {
            '.' => {
                atom = Atom::Dot;
                i += 1;
            }
            '\\' => {
                atom = Atom::Lit(chars[i + 1]);
                i += 2;
            }
            '[' => {
                let (class, next) = parse_class(chars, i + 1);
                atom = Atom::Class(class);
                i = next;
            }
            '(' => {
                let (inner, next) = parse_seq(chars, i + 1);
                assert!(chars.get(next) == Some(&')'), "unclosed group in regex");
                atom = Atom::Group(inner);
                i = next + 1;
            }
            c => {
                assert!(
                    !"{}*+?|^$".contains(c),
                    "unsupported regex metacharacter `{c}`"
                );
                atom = Atom::Lit(c);
                i += 1;
            }
        }
        let (min, max, next) = parse_rep(chars, i);
        i = next;
        seq.push(Rep { atom, min, max });
    }
    (seq, i)
}

fn parse_class(chars: &[char], mut i: usize) -> (Vec<(char, char)>, usize) {
    let mut ranges = Vec::new();
    while chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            let c = chars[i];
            i += 1;
            c
        } else {
            let c = chars[i];
            i += 1;
            c
        };
        // `a-z` forms a range unless `-` is the last char before `]`.
        if chars[i] == '-' && chars[i + 1] != ']' {
            let hi = chars[i + 1];
            i += 2;
            assert!(c <= hi, "inverted class range in regex");
            ranges.push((c, hi));
        } else {
            ranges.push((c, c));
        }
    }
    (ranges, i + 1)
}

fn parse_rep(chars: &[char], i: usize) -> (u32, u32, usize) {
    if chars.get(i) != Some(&'{') {
        return (1, 1, i);
    }
    let close = chars[i..]
        .iter()
        .position(|&c| c == '}')
        .expect("unclosed repetition in regex")
        + i;
    let body: String = chars[i + 1..close].iter().collect();
    let (min, max) = match body.split_once(',') {
        Some((lo, hi)) => (
            lo.parse().expect("repetition lower bound"),
            hi.parse().expect("repetition upper bound"),
        ),
        None => {
            let n = body.parse().expect("repetition count");
            (n, n)
        }
    };
    (min, max, close + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("proptest-self-test")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (-50i64..50).generate(&mut r);
            assert!((-50..50).contains(&v));
            let u = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&u));
            let f = (-2.0f64..2.0).generate(&mut r);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn regex_subset_produces_matching_shapes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[A-Z]{3}(\\|[-a-z0-9._ ]{0,4}){0,3}".generate(&mut r);
            let head: String = s.chars().take(3).collect();
            assert!(
                head.chars().all(|c| c.is_ascii_uppercase()),
                "bad head in {s:?}"
            );
            for part in s.chars().skip(3).collect::<String>().split('|').skip(1) {
                assert!(part.len() <= 4);
            }
        }
        for _ in 0..50 {
            let s = "[ -~]{0,8}".generate(&mut r);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut r = rng();
        let u = crate::prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| u.generate(&mut r)).count();
        assert!(trues > 800, "expected ~900 trues, got {trues}");
    }

    #[test]
    fn btree_set_respects_target_size() {
        let mut r = rng();
        let s = crate::collection::btree_set(0i64..1000, 5..10);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v.len() < 10);
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut r = rng();
        for _ in 0..50 {
            assert!(depth(&strat.generate(&mut r)) <= 3);
        }
    }
}
