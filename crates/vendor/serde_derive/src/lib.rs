//! Offline stand-in for [`serde_derive`](https://crates.io/crates/serde_derive).
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored `serde` crate's Content data model. Parsing is done directly on
//! `proc_macro::TokenStream` (no `syn`/`quote` available offline), which is
//! enough for the shapes this workspace derives: non-generic structs with
//! named fields, and enums of unit + newtype variants. Supported field
//! attributes: `#[serde(default)]`, `#[serde(default = "path")]` and
//! `#[serde(with = "module")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_serialize(name, fields),
        Item::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_deserialize(name, fields),
        Item::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    /// `#[serde(default)]`: substitute `Default::default()` when absent.
    default: bool,
    /// `#[serde(default = "path")]`: substitute `path()` when absent.
    default_path: Option<String>,
    /// `#[serde(with = "module")]`: route through `module::{serialize,deserialize}`.
    with: Option<String>,
}

struct Variant {
    name: String,
    /// Unit variant (`Foo`) vs. newtype variant (`Foo(T)`).
    newtype: bool,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

struct SerdeAttrs {
    default: bool,
    default_path: Option<String>,
    with: Option<String>,
}

/// Skip (and interpret) any `#[...]` attributes at `i`, returning collected
/// `#[serde(...)]` settings.
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs {
        default: false,
        default_path: None,
        with: None,
    };
    while *i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[*i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[*i + 1] else {
            break;
        };
        if g.delimiter() == Delimiter::Bracket {
            parse_serde_attr(g.stream(), &mut attrs);
            *i += 2;
        } else {
            break;
        }
    }
    attrs
}

/// If the bracketed attribute body is `serde(...)`, fold its settings in.
fn parse_serde_attr(body: TokenStream, attrs: &mut SerdeAttrs) {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let [TokenTree::Ident(name), TokenTree::Group(args)] = &tokens[..] else {
        return;
    };
    if name.to_string() != "serde" {
        return;
    }
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        match &args[j] {
            TokenTree::Ident(id) if id.to_string() == "default" => {
                // Bare `default`, or `default = "path::to::fn"`.
                if let Some(TokenTree::Punct(p)) = args.get(j + 1) {
                    if p.as_char() == '=' {
                        let Some(TokenTree::Literal(lit)) = args.get(j + 2) else {
                            panic!("#[serde(default = ...)] expects a string literal");
                        };
                        let raw = lit.to_string();
                        let path = raw
                            .strip_prefix('"')
                            .and_then(|s| s.strip_suffix('"'))
                            .unwrap_or_else(|| {
                                panic!("#[serde(default = ...)] expects a plain string")
                            });
                        attrs.default_path = Some(path.to_string());
                        j += 3;
                        continue;
                    }
                }
                attrs.default = true;
                j += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "with" => {
                // with = "module::path"
                let Some(TokenTree::Literal(lit)) = args.get(j + 2) else {
                    panic!("#[serde(with = ...)] expects a string literal");
                };
                let raw = lit.to_string();
                let path = raw
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .unwrap_or_else(|| panic!("#[serde(with = ...)] expects a plain string"));
                attrs.with = Some(path.to_string());
                j += 3;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => j += 1,
            other => panic!("unsupported #[serde(...)] setting: {other}"),
        }
    }
}

/// Skip `pub` / `pub(...)` if present.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    take_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected a type name, found {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("derive on generic type `{name}` is not supported by the vendored serde_derive");
        }
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "derive on `{name}` requires a braced body (named-field struct or enum), found {other:?}"
        ),
    };

    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("cannot derive for item kind `{other}`"),
    }
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = take_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected a field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        // Consume the type: everything up to the next comma at angle-depth 0.
        // `->` must not count its `>` against the depth.
        let mut depth = 0i32;
        let mut prev_dash = false;
        while let Some(tt) = tokens.get(i) {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    ',' if depth == 0 => break,
                    '<' => depth += 1,
                    '>' if !prev_dash => depth -= 1,
                    _ => {}
                }
                prev_dash = p.as_char() == '-';
            } else {
                prev_dash = false;
            }
            i += 1;
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        fields.push(Field {
            name,
            default: attrs.default,
            default_path: attrs.default_path,
            with: attrs.with,
        });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        take_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected a variant name, found {other:?}"),
        };
        i += 1;
        let mut newtype = false;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    newtype = true;
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("struct-variant `{name}` is not supported by the vendored serde_derive")
                }
                _ => {}
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, newtype });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const SER_CUSTOM: &str = "<S::Error as serde::ser::Error>::custom";
const DE_CUSTOM: &str = "<D::Error as serde::de::Error>::custom";

fn gen_struct_serialize(name: &str, fields: &[Field]) -> String {
    let mut body = String::new();
    for f in fields {
        let value = match &f.with {
            Some(path) => format!(
                "{path}::serialize(&self.{field}, serde::ser::ContentSerializer).map_err({SER_CUSTOM})?",
                field = f.name
            ),
            None => format!(
                "serde::ser::to_content(&self.{field}).map_err({SER_CUSTOM})?",
                field = f.name
            ),
        };
        body.push_str(&format!(
            "entries.push((String::from(\"{field}\"), {value}));\n",
            field = f.name
        ));
    }
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {{\n\
                 let mut entries: Vec<(String, serde::Content)> = Vec::new();\n\
                 {body}\
                 serializer.serialize_content(serde::Content::Map(entries))\n\
             }}\n\
         }}\n"
    )
}

fn gen_struct_deserialize(name: &str, fields: &[Field]) -> String {
    let mut body = String::new();
    for f in fields {
        let present = match &f.with {
            Some(path) => format!(
                "{path}::deserialize(serde::de::ContentDeserializer::new(c)).map_err({DE_CUSTOM})?"
            ),
            None => format!("serde::de::from_content(c).map_err({DE_CUSTOM})?"),
        };
        let absent = if let Some(path) = &f.default_path {
            format!("{path}()")
        } else if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return Err({DE_CUSTOM}(\"missing field `{field}` in {name}\"))",
                field = f.name
            )
        };
        body.push_str(&format!(
            "{field}: match serde::de::field(&entries, \"{field}\") {{\n\
                 Some(c) => {present},\n\
                 None => {absent},\n\
             }},\n",
            field = f.name
        ));
    }
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {{\n\
                 let entries = match deserializer.content()? {{\n\
                     serde::Content::Map(entries) => entries,\n\
                     other => return Err({DE_CUSTOM}(format!(\"expected an object for {name}, found {{other:?}}\"))),\n\
                 }};\n\
                 Ok({name} {{\n\
                     {body}\
                 }})\n\
             }}\n\
         }}\n"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        if v.newtype {
            arms.push_str(&format!(
                "{name}::{variant}(inner) => serde::Content::Map(vec![(String::from(\"{variant}\"), serde::ser::to_content(inner).map_err({SER_CUSTOM})?)]),\n",
                variant = v.name
            ));
        } else {
            arms.push_str(&format!(
                "{name}::{variant} => serde::Content::Str(String::from(\"{variant}\")),\n",
                variant = v.name
            ));
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {{\n\
                 let content = match self {{\n\
                     {arms}\
                 }};\n\
                 serializer.serialize_content(content)\n\
             }}\n\
         }}\n"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut newtype_arms = String::new();
    for v in variants {
        if v.newtype {
            newtype_arms.push_str(&format!(
                "\"{variant}\" => Ok({name}::{variant}(serde::de::from_content(value).map_err({DE_CUSTOM})?)),\n",
                variant = v.name
            ));
        } else {
            unit_arms.push_str(&format!(
                "\"{variant}\" => Ok({name}::{variant}),\n",
                variant = v.name
            ));
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {{\n\
                 match deserializer.content()? {{\n\
                     serde::Content::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\
                         other => Err({DE_CUSTOM}(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                         let (key, value) = &entries[0];\n\
                         match key.as_str() {{\n\
                             {newtype_arms}\
                             other => Err({DE_CUSTOM}(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err({DE_CUSTOM}(format!(\"invalid representation of enum {name}: {{other:?}}\"))),\n\
                 }}\n\
             }}\n\
         }}\n"
    )
}
