//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Bridges JSON text and the vendored `serde` crate's [`Content`] tree:
//! `to_string` / `to_string_pretty` / `from_str`, plus the `Error` type the
//! workspace's `Result<_, serde_json::Error>` signatures name.

#![warn(missing_docs)]

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// A serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = serde::ser::to_content(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_content(&content, None, 0, &mut out);
    Ok(out)
}

/// Serialize `value` to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = serde::ser::to_content(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_content(&content, Some(2), 0, &mut out);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<'a, T: Deserialize<'a>>(json: &'a str) -> Result<T> {
    let mut parser = Parser {
        bytes: json.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    T::deserialize(JsonDeserializer(&content))
}

struct JsonDeserializer<'a>(&'a Content);

impl<'de, 'a> serde::Deserializer<'de> for JsonDeserializer<'a> {
    type Error = Error;
    fn content(self) -> Result<Content> {
        Ok(self.0.clone())
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(c: &Content, indent: Option<usize>, level: usize, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            // JSON has no NaN/Infinity; real serde_json refuses them, we
            // degrade to null so reports always serialize.
            if v.is_finite() {
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_content(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| self.error("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| self.error("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| self.error("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn compact_and_pretty_roundtrip() {
        let mut m: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        m.insert("a b".to_string(), vec![1, 2]);
        m.insert("c\"d".to_string(), vec![]);
        let compact = to_string(&m).unwrap();
        assert_eq!(compact, r#"{"a b":[1,2],"c\"d":[]}"#);
        let pretty = to_string_pretty(&m).unwrap();
        let back: BTreeMap<String, Vec<u64>> = from_str(&pretty).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn numbers_parse_by_kind() {
        let v: i64 = from_str("-12").unwrap();
        assert_eq!(v, -12);
        let v: u64 = from_str("12").unwrap();
        assert_eq!(v, 12);
        let v: f64 = from_str("1.5e2").unwrap();
        assert_eq!(v, 150.0);
        // Integers coerce into float targets.
        let v: f64 = from_str("7").unwrap();
        assert_eq!(v, 7.0);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u64>("12trailing").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let s = "line1\nline2\t\u{1}";
        let json = to_string(&s).unwrap();
        assert_eq!(json, r#""line1\nline2\t\u0001""#);
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
