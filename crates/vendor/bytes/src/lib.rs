//! Offline stand-in for [`bytes`](https://crates.io/crates/bytes).
//!
//! Provides the `Buf`/`BufMut`/`Bytes`/`BytesMut` subset this workspace uses
//! for wire-protocol and WAL encoding, backed by `Vec<u8>`. Little-endian
//! fixed-width accessors only (the wire format is exclusively LE).

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// Read-side cursor abstraction over a contiguous byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Fill `dst` from the front of the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write-side abstraction over a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable, writable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Create an empty buffer.
    pub const fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Create an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Append bytes to the end of the buffer.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.0.extend_from_slice(bytes);
    }

    /// Take the current contents, leaving this buffer empty.
    pub fn split(&mut self) -> BytesMut {
        BytesMut(std::mem::take(&mut self.0))
    }

    /// Convert into an immutable, consumable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.0,
            pos: 0,
        }
    }

    /// Drop the contents.
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut(v)
    }
}

/// An immutable byte buffer consumed through the [`Buf`] cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Length of the unconsumed portion.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Copy out a sub-range of the unconsumed portion as a fresh [`Bytes`].
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self[range].to_vec(),
            pos: 0,
        }
    }

    /// Whether everything has been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.0.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.0
    }

    fn advance(&mut self, cnt: usize) {
        self.0.drain(..cnt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_i64_le(-5);
        buf.put_f64_le(2.5);
        buf.put_slice(b"xy");
        let mut rd = buf.freeze();
        assert_eq!(rd.get_u8(), 7);
        assert_eq!(rd.get_u16_le(), 300);
        assert_eq!(rd.get_u32_le(), 70_000);
        assert_eq!(rd.get_u64_le(), 1 << 40);
        assert_eq!(rd.get_i64_le(), -5);
        assert_eq!(rd.get_f64_le(), 2.5);
        let mut tail = [0u8; 2];
        rd.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn slice_buf_advances() {
        let data = [1u8, 2, 3, 4];
        let mut s: &[u8] = &data;
        assert_eq!(s.get_u8(), 1);
        assert_eq!(s.remaining(), 3);
        s.advance(1);
        assert_eq!(s.get_u16_le(), u16::from_le_bytes([3, 4]));
    }

    #[test]
    fn split_takes_contents() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"abc");
        let taken = buf.split();
        assert_eq!(&taken[..], b"abc");
        assert!(buf.is_empty());
    }
}
