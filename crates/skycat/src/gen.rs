//! Synthetic catalog data generator.
//!
//! We do not have the proprietary Palomar-Quest catalog files, so this
//! module generates their closest synthetic equivalent (per the paper's
//! description in §2/§4.1): one observation produces **28 catalog files**
//! (one per CCD column group), each containing **4 CCD columns** of frames
//! with interleaved child rows — a frame row followed by its 4 aperture
//! rows, an object row followed by its 4 finger rows — with file sizes that
//! "vary in size" (§4.4), primary keys presorted (§4.5.4) or shuffled, and
//! a configurable rate of injected data errors ("it is not unusual for sky
//! survey data to have missing and/or invalid values", §4.3).
//!
//! Error injection is exact and accounted: every corrupted row is recorded
//! in [`ExpectedCounts`], including FK cascades (an object that fails to
//! load takes its 4 fingers with it), so integration tests can assert final
//! table counts to the row.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use skysim::rng::SplitMix64;

use crate::format::{format_line, RecordTag};

/// Span of the id space reserved for one catalog file.
const FILE_SPAN: i64 = 10_000_000;

const OFF_CCD_COL: i64 = 0;
const OFF_IMAGE: i64 = 100;
const OFF_FRAME: i64 = 1_000;
const OFF_APERTURE: i64 = 10_000;
const OFF_STAT: i64 = 50_000;
const OFF_ASTRO: i64 = 60_000;
const OFF_ZP: i64 = 70_000;
const OFF_QC: i64 = 80_000;
const OFF_OFLAG: i64 = 100_000;
const OFF_OBJECT: i64 = 500_000;
const OFF_FINGER: i64 = 1_500_000;

/// Configuration for one observation's worth of synthetic catalog data.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Deterministic seed; same seed ⇒ byte-identical files.
    pub seed: u64,
    /// The (pre-seeded) observation id the files reference.
    pub obs_id: i64,
    /// Number of catalog files (the paper's observation yields 28).
    pub files: usize,
    /// CCD columns per file (4, per §4.4).
    pub ccds_per_file: usize,
    /// Frames per CCD column (scaled by per-file size skew).
    pub frames_per_ccd: usize,
    /// Mean objects per frame (actual counts vary ±50%).
    pub objects_per_frame: usize,
    /// Fraction of object rows corrupted (0.0 = clean data).
    pub error_rate: f64,
    /// `true`: primary keys ascend in file order (the §4.5.4 presort);
    /// `false`: object/finger ids are a random permutation.
    pub presorted: bool,
    /// Relative spread of file sizes (0.0 = uniform, 0.5 = ±50%).
    pub size_skew: f64,
}

impl GenConfig {
    /// A full paper-shaped night: 28 files × 4 CCDs.
    pub fn night(seed: u64, obs_id: i64) -> Self {
        GenConfig {
            seed,
            obs_id,
            files: 28,
            ccds_per_file: 4,
            frames_per_ccd: 4,
            objects_per_frame: 50,
            error_rate: 0.0,
            presorted: true,
            size_skew: 0.4,
        }
    }

    /// A small single-file configuration for unit tests and quick examples.
    pub fn small(seed: u64, obs_id: i64) -> Self {
        GenConfig {
            seed,
            obs_id,
            files: 1,
            ccds_per_file: 2,
            frames_per_ccd: 2,
            objects_per_frame: 20,
            error_rate: 0.0,
            presorted: true,
            size_skew: 0.0,
        }
    }

    /// Builder-style: set the error rate.
    pub fn with_error_rate(mut self, rate: f64) -> Self {
        self.error_rate = rate;
        self
    }

    /// Builder-style: set presorting.
    pub fn with_presorted(mut self, presorted: bool) -> Self {
        self.presorted = presorted;
        self
    }

    /// Builder-style: scale the workload size by adjusting frames per CCD.
    pub fn with_frames_per_ccd(mut self, frames: usize) -> Self {
        self.frames_per_ccd = frames;
        self
    }

    /// Builder-style: set mean objects per frame.
    pub fn with_objects_per_frame(mut self, objects: usize) -> Self {
        self.objects_per_frame = objects;
        self
    }

    /// Builder-style: set the number of files.
    pub fn with_files(mut self, files: usize) -> Self {
        self.files = files;
        self
    }
}

/// Exact bookkeeping of what a generated file contains and what a correct
/// loader must end up loading.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExpectedCounts {
    /// Lines emitted per destination table (including corrupted ones).
    pub emitted: BTreeMap<&'static str, u64>,
    /// Rows a correct loader ends up committing per table (corrupted rows
    /// and their FK cascades excluded).
    pub loadable: BTreeMap<&'static str, u64>,
    /// Object rows corrupted at generation time.
    pub corrupted_objects: u64,
    /// Lines that cannot even be parsed (malformed field counts).
    pub malformed_lines: u64,
}

impl ExpectedCounts {
    fn bump(&mut self, table: &'static str, loadable: bool) {
        *self.emitted.entry(table).or_insert(0) += 1;
        if loadable {
            *self.loadable.entry(table).or_insert(0) += 1;
        }
    }

    /// Total lines emitted.
    pub fn total_emitted(&self) -> u64 {
        self.emitted.values().sum()
    }

    /// Total rows a correct loader commits.
    pub fn total_loadable(&self) -> u64 {
        self.loadable.values().sum()
    }

    /// Merge another file's counts into this one.
    pub fn merge(&mut self, other: &ExpectedCounts) {
        for (t, n) in &other.emitted {
            *self.emitted.entry(t).or_insert(0) += n;
        }
        for (t, n) in &other.loadable {
            *self.loadable.entry(t).or_insert(0) += n;
        }
        self.corrupted_objects += other.corrupted_objects;
        self.malformed_lines += other.malformed_lines;
    }
}

/// One generated catalog file.
#[derive(Debug, Clone)]
pub struct CatalogFile {
    /// File name, e.g. `obs000100_f07.cat`.
    pub name: String,
    /// The full ASCII contents.
    pub text: String,
    /// Exact emitted/loadable accounting.
    pub expected: ExpectedCounts,
}

impl CatalogFile {
    /// Number of (newline-terminated) lines.
    pub fn line_count(&self) -> usize {
        self.text.lines().count()
    }

    /// Size in bytes.
    pub fn byte_len(&self) -> usize {
        self.text.len()
    }

    /// Write to `dir/name`, returning the path.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(&self.name);
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.text.as_bytes())?;
        Ok(path)
    }
}

/// Kinds of injected corruption, in the paper's spirit: duplicate keys
/// (re-extraction overlap), orphan references, invalid values, and garbled
/// lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Corruption {
    DuplicatePk,
    OrphanFk,
    BadValue,
    Malformed,
}

fn pick_corruption(rng: &mut SplitMix64) -> Corruption {
    match rng.next_below(10) {
        0..=3 => Corruption::DuplicatePk,
        4..=6 => Corruption::OrphanFk,
        7..=8 => Corruption::BadValue,
        _ => Corruption::Malformed,
    }
}

/// Generate all files of an observation.
pub fn generate_observation(cfg: &GenConfig) -> Vec<CatalogFile> {
    (0..cfg.files).map(|i| generate_file(cfg, i)).collect()
}

/// Aggregate expected counts across a set of files.
pub fn aggregate_expected(files: &[CatalogFile]) -> ExpectedCounts {
    let mut total = ExpectedCounts::default();
    for f in files {
        total.merge(&f.expected);
    }
    total
}

/// Generate one catalog file.
pub fn generate_file(cfg: &GenConfig, file_idx: usize) -> CatalogFile {
    assert!(file_idx < cfg.files, "file index out of range");
    assert!(cfg.ccds_per_file > 0 && cfg.frames_per_ccd > 0);
    let mut rng = SplitMix64::new(cfg.seed ^ (file_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let base = (cfg.obs_id * 1000 + file_idx as i64 + 1) * FILE_SPAN;
    let mut expected = ExpectedCounts::default();

    // Per-file size skew (§4.4: the 28 files "vary in size").
    let skew = 1.0 + cfg.size_skew * (2.0 * rng.next_f64() - 1.0);
    let frames_per_ccd = ((cfg.frames_per_ccd as f64 * skew).round() as usize).max(1);

    // Pre-plan object counts so unsorted mode can permute ids.
    let total_frames = cfg.ccds_per_file * frames_per_ccd;
    let object_counts: Vec<usize> = (0..total_frames)
        .map(|_| {
            let mean = cfg.objects_per_frame.max(1) as u64;
            (mean / 2 + rng.next_below(mean + 1)) as usize
        })
        .collect();
    let total_objects: usize = object_counts.iter().sum();
    let mut object_ord_to_id: Vec<i64> = (0..total_objects as i64).collect();
    if !cfg.presorted {
        rng.shuffle(&mut object_ord_to_id);
    }

    let mut text = String::with_capacity(total_objects * 300);
    let mut push = |line: String| {
        text.push_str(&line);
        text.push('\n');
    };
    let fmt_f = |x: f64| format!("{x:.6}");

    // Sky geometry: this file covers a drift-scan stripe.
    let ra0 = 150.0 + file_idx as f64 * 0.55;
    let mut object_ordinal = 0usize;
    let mut frame_seq = 0usize;
    let mut last_clean_object_id: Option<i64> = None;

    for ccd in 0..cfg.ccds_per_file {
        let ccd_col_id = base + OFF_CCD_COL + ccd as i64;
        let ccd_chip_id = (file_idx * cfg.ccds_per_file + ccd) as i64 % crate::schema::N_CCDS + 1;
        let dec0 = -1.2 + 0.6 * ccd as f64;
        push(format_line(
            RecordTag::Ccd,
            &[
                ccd_col_id.to_string(),
                cfg.obs_id.to_string(),
                ccd_chip_id.to_string(),
                ccd.to_string(),
                fmt_f(ra0),
                fmt_f(ra0 + 0.5),
                fmt_f(dec0),
                fmt_f(dec0 + 0.6),
            ],
        ));
        expected.bump("ccd_columns", true);

        let image_id = base + OFF_IMAGE + ccd as i64;
        push(format_line(
            RecordTag::Img,
            &[
                image_id.to_string(),
                ccd_col_id.to_string(),
                "0".to_string(),
                fmt_f(53_500.25 + file_idx as f64 * 0.001),
                fmt_f(140.0),
                fmt_f(2.5 + 0.01 * ccd as f64),
                fmt_f(11.0),
            ],
        ));
        expected.bump("ccd_images", true);

        for fno in 0..frames_per_ccd {
            let frame_id = base + OFF_FRAME + frame_seq as i64;
            let fra = ra0 + 0.5 * fno as f64 / frames_per_ccd as f64;
            push(format_line(
                RecordTag::Frm,
                &[
                    frame_id.to_string(),
                    image_id.to_string(),
                    fno.to_string(),
                    fmt_f(fra),
                    fmt_f(fra + 0.1),
                    fmt_f(dec0),
                    fmt_f(dec0 + 0.6),
                    fmt_f(850.0 + rng.next_f64_range(0.0, 100.0)),
                    fmt_f(1.0 + rng.next_f64_range(0.0, 1.5)),
                ],
            ));
            expected.bump("ccd_frames", true);

            for ap in 1..=4 {
                let aperture_id = base + OFF_APERTURE + (frame_seq * 4 + ap - 1) as i64;
                push(format_line(
                    RecordTag::Apr,
                    &[
                        aperture_id.to_string(),
                        frame_id.to_string(),
                        ap.to_string(),
                        fmt_f(1.5 * ap as f64),
                        fmt_f(3.0 * ap as f64),
                        fmt_f(4.5 * ap as f64),
                    ],
                ));
                expected.bump("ccd_frame_apertures", true);
            }

            let n_objects = object_counts[frame_seq];
            push(format_line(
                RecordTag::Fst,
                &[
                    (base + OFF_STAT + frame_seq as i64).to_string(),
                    frame_id.to_string(),
                    n_objects.to_string(),
                    fmt_f(18.0 + rng.next_f64_range(0.0, 2.0)),
                    fmt_f(12.0 + rng.next_f64_range(0.0, 2.0)),
                    fmt_f(rng.next_f64_range(0.0, 0.05)),
                ],
            ));
            expected.bump("frame_statistics", true);
            push(format_line(
                RecordTag::Ast,
                &[
                    (base + OFF_ASTRO + frame_seq as i64).to_string(),
                    frame_id.to_string(),
                    fmt_f(fra + 0.05),
                    fmt_f(dec0 + 0.3),
                    format!("{:.8}", 0.000236),
                    "0.00000000".to_string(),
                    "0.00000000".to_string(),
                    format!("{:.8}", 0.000236),
                    fmt_f(0.08 + rng.next_f64_range(0.0, 0.1)),
                ],
            ));
            expected.bump("astrometry_solutions", true);
            push(format_line(
                RecordTag::Zpt,
                &[
                    (base + OFF_ZP + frame_seq as i64).to_string(),
                    frame_id.to_string(),
                    "3".to_string(), // r band
                    fmt_f(24.3 + rng.next_f64_range(0.0, 0.4)),
                    fmt_f(0.02 + rng.next_f64_range(0.0, 0.02)),
                    fmt_f(0.10 + rng.next_f64_range(0.0, 0.05)),
                ],
            ));
            expected.bump("photometry_zeropoints", true);
            push(format_line(
                RecordTag::Qch,
                &[
                    (base + OFF_QC + frame_seq as i64).to_string(),
                    frame_id.to_string(),
                    "astrom-rms".to_string(),
                    if rng.chance(0.97) { "1" } else { "0" }.to_string(),
                ],
            ));
            expected.bump("quality_checks", true);

            // ---- objects, each followed by its 4 fingers ----
            for _ in 0..n_objects {
                let ord = object_ordinal;
                object_ordinal += 1;
                let object_id = base + OFF_OBJECT + object_ord_to_id[ord];
                let finger_base = base + OFF_FINGER + object_ord_to_id[ord] * 4;

                let corruption = if cfg.error_rate > 0.0 && rng.chance(cfg.error_rate) {
                    let mut kind = pick_corruption(&mut rng);
                    if kind == Corruption::DuplicatePk && last_clean_object_id.is_none() {
                        kind = Corruption::OrphanFk;
                    }
                    Some(kind)
                } else {
                    None
                };

                let (row_object_id, row_frame_id, mag_milli) = match corruption {
                    Some(Corruption::DuplicatePk) => {
                        (last_clean_object_id.expect("guarded"), frame_id, 17_500)
                    }
                    Some(Corruption::OrphanFk) => (object_id, frame_id + 777_777, 17_500),
                    Some(Corruption::BadValue) => (object_id, frame_id, 999_999),
                    _ => (object_id, frame_id, 14_000 + rng.next_below(8000) as i64),
                };
                let mag = mag_milli as f64 / 1000.0;
                let flux = (10f64.powf((25.0 - mag.min(30.0)) / 2.5)).round() as i64;
                let ra = fra + rng.next_f64_range(0.0, 0.1);
                let dec = dec0 + rng.next_f64_range(0.0, 0.6);
                let fields = vec![
                    row_object_id.to_string(),
                    row_frame_id.to_string(),
                    fmt_f(ra),
                    fmt_f(dec),
                    flux.to_string(),
                    fmt_f(flux as f64 * 0.01),
                    mag_milli.to_string(),
                    (20 + rng.next_below(80)).to_string(),
                    fmt_f(1.0 + rng.next_f64_range(0.0, 2.0)),
                    fmt_f(rng.next_f64_range(0.0, 0.6)),
                    fmt_f(rng.next_f64_range(0.0, 180.0)),
                    rng.next_below(4).to_string(),
                    fmt_f(rng.next_f64_range(0.0, 2048.0)),
                    fmt_f(rng.next_f64_range(0.0, 4096.0)),
                ];
                let line = if corruption == Some(Corruption::Malformed) {
                    // Garble: drop the trailing fields so parsing fails.
                    let mut l = format_line(RecordTag::Obj, &fields);
                    let cut = l.len()
                        - fields[10].len()
                        - fields[11].len()
                        - fields[12].len()
                        - fields[13].len()
                        - 4;
                    l.truncate(cut);
                    l
                } else {
                    format_line(RecordTag::Obj, &fields)
                };
                push(line);

                // Accounting: the object row loads iff it is clean.
                let object_loads = corruption.is_none();
                expected.bump("objects", object_loads);
                if corruption.is_some() {
                    expected.corrupted_objects += 1;
                    if corruption == Some(Corruption::Malformed) {
                        expected.malformed_lines += 1;
                    }
                }
                if object_loads {
                    last_clean_object_id = Some(object_id);
                }
                // Fingers reference the row's object id. They load iff that
                // id exists after loading: clean rows (their own id) and
                // DuplicatePk rows (the earlier original's id).
                let fingers_load = object_loads || corruption == Some(Corruption::DuplicatePk);
                for k in 0..4 {
                    push(format_line(
                        RecordTag::Fng,
                        &[
                            (finger_base + k).to_string(),
                            row_object_id.to_string(),
                            (k + 1).to_string(),
                            fmt_f(rng.next_f64_range(-2.0, 2.0)),
                            fmt_f(rng.next_f64_range(-2.0, 2.0)),
                            fmt_f(rng.next_f64_range(0.0, 0.25)),
                        ],
                    ));
                    expected.bump("fingers", fingers_load);
                }
                // Every 10th object gets an extra flag row.
                if ord.is_multiple_of(10) {
                    push(format_line(
                        RecordTag::Ofl,
                        &[
                            (base + OFF_OFLAG + ord as i64).to_string(),
                            row_object_id.to_string(),
                            "deblended".to_string(),
                            rng.next_below(2).to_string(),
                        ],
                    ));
                    expected.bump("object_flags", fingers_load);
                }
            }
            frame_seq += 1;
        }
    }

    CatalogFile {
        name: format!("obs{:06}_f{:02}.cat", cfg.obs_id, file_idx),
        text,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::parse_line;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::night(7, 100);
        let a = generate_file(&cfg, 3);
        let b = generate_file(&cfg, 3);
        assert_eq!(a.text, b.text);
        assert_eq!(a.expected, b.expected);
        let c = generate_file(&cfg, 4);
        assert_ne!(a.text, c.text, "different files differ");
    }

    #[test]
    fn clean_file_all_lines_parse_and_all_rows_loadable() {
        let cfg = GenConfig::small(1, 100);
        let f = generate_file(&cfg, 0);
        assert_eq!(f.expected.corrupted_objects, 0);
        assert_eq!(f.expected.total_emitted(), f.expected.total_loadable());
        let mut parsed = 0u64;
        for line in f.text.lines() {
            let rec = parse_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            let (_, _row) =
                crate::transform::transform(&rec).unwrap_or_else(|e| panic!("{e}: {line}"));
            parsed += 1;
        }
        assert_eq!(parsed, f.expected.total_emitted());
        assert_eq!(f.line_count() as u64, parsed);
    }

    #[test]
    fn interleave_structure_objects_followed_by_four_fingers() {
        let cfg = GenConfig::small(2, 100);
        let f = generate_file(&cfg, 0);
        let lines: Vec<&str> = f.text.lines().collect();
        let mut fingers_after_obj = 0;
        for (i, l) in lines.iter().enumerate() {
            if l.starts_with("OBJ|") {
                for k in 1..=4 {
                    assert!(
                        lines[i + k].starts_with("FNG|"),
                        "line {i}+{k} should be a finger"
                    );
                }
                fingers_after_obj += 1;
            }
            if l.starts_with("FRM|") {
                for k in 1..=4 {
                    assert!(lines[i + k].starts_with("APR|"));
                }
            }
        }
        assert!(fingers_after_obj > 0);
    }

    #[test]
    fn error_injection_accounted_exactly() {
        let cfg = GenConfig::night(9, 100).with_error_rate(0.1);
        let f = generate_file(&cfg, 0);
        assert!(
            f.expected.corrupted_objects > 0,
            "10% should corrupt something"
        );
        let emitted_obj = f.expected.emitted["objects"];
        let loadable_obj = f.expected.loadable["objects"];
        assert_eq!(emitted_obj - loadable_obj, f.expected.corrupted_objects);
        // Finger cascades: fewer loadable fingers than emitted.
        assert!(f.expected.loadable["fingers"] < f.expected.emitted["fingers"]);
        // Malformed lines really fail to parse.
        let unparseable = f.text.lines().filter(|l| parse_line(l).is_err()).count() as u64;
        assert_eq!(unparseable, f.expected.malformed_lines);
    }

    #[test]
    fn file_sizes_skewed() {
        let cfg = GenConfig::night(11, 100);
        let files = generate_observation(&cfg);
        assert_eq!(files.len(), 28);
        let min = files.iter().map(CatalogFile::byte_len).min().unwrap();
        let max = files.iter().map(CatalogFile::byte_len).max().unwrap();
        assert!(
            max as f64 > min as f64 * 1.2,
            "sizes should vary: min={min} max={max}"
        );
    }

    #[test]
    fn id_spaces_disjoint_across_files() {
        let cfg = GenConfig::night(13, 100);
        let a = generate_file(&cfg, 0);
        let b = generate_file(&cfg, 1);
        let ids = |text: &str| -> std::collections::HashSet<i64> {
            text.lines()
                .filter(|l| l.starts_with("OBJ|"))
                .filter_map(|l| l.split('|').nth(1)?.parse().ok())
                .collect()
        };
        let ia = ids(&a.text);
        let ib = ids(&b.text);
        assert!(
            ia.is_disjoint(&ib),
            "object ids must not collide across files"
        );
    }

    #[test]
    fn unsorted_mode_scatters_object_ids() {
        let sorted = generate_file(&GenConfig::night(5, 100), 0);
        let unsorted = generate_file(&GenConfig::night(5, 100).with_presorted(false), 0);
        let obj_ids = |text: &str| -> Vec<i64> {
            text.lines()
                .filter(|l| l.starts_with("OBJ|"))
                .filter_map(|l| l.split('|').nth(1)?.parse().ok())
                .collect()
        };
        let s = obj_ids(&sorted.text);
        let u = obj_ids(&unsorted.text);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "presorted ids ascend");
        assert!(!u.windows(2).all(|w| w[0] < w[1]), "unsorted ids scatter");
        // Same multiset of ids either way.
        let mut s2 = s.clone();
        let mut u2 = u.clone();
        s2.sort_unstable();
        u2.sort_unstable();
        assert_eq!(s2, u2);
    }

    #[test]
    fn aggregate_expected_sums_files() {
        let cfg = GenConfig::night(17, 100).with_files(3);
        let files = generate_observation(&cfg);
        let total = aggregate_expected(&files);
        let manual: u64 = files.iter().map(|f| f.expected.total_emitted()).sum();
        assert_eq!(total.total_emitted(), manual);
    }

    #[test]
    fn write_to_disk_roundtrips() {
        let dir = std::env::temp_dir().join(format!("skycat-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let f = generate_file(&GenConfig::small(3, 100), 0);
        let path = f.write_to(&dir).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, f.text);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
