//! # skycat — the Palomar-Quest catalog data model and workload
//!
//! Everything about the *data* side of the SC 2005 SkyLoader paper:
//!
//! * [`schema`] — the 23-table repository data model (paper Fig. 1) with
//!   its full primary/foreign-key graph, plus seeding of the static
//!   dimension tables (112 CCDs, filters, pipelines, …);
//! * [`mod@format`] — the tagged, interleaved catalog ASCII format (§4.1);
//! * [`mod@transform`] — per-row parse / validate / transform / compute,
//!   including htmid and galactic coordinates (§3);
//! * [`gen`] — a deterministic synthetic generator standing in for the
//!   proprietary survey data: 28 skewed files per observation, exact
//!   error-injection accounting.
//!
//! ```
//! use skycat::gen::{generate_file, GenConfig};
//! let file = generate_file(&GenConfig::small(42, 100), 0);
//! assert!(file.line_count() > 0);
//! // Every line parses and transforms into a typed row:
//! for line in file.text.lines() {
//!     let rec = skycat::format::parse_line(line).unwrap();
//!     let (_table, _row) = skycat::transform::transform(&rec).unwrap();
//! }
//! ```

#![warn(missing_docs)]

pub mod format;
pub mod gen;
pub mod schema;
pub mod transform;

pub use format::{parse_line, ParseError, RawRecord, RecordTag};
pub use gen::{generate_file, generate_observation, CatalogFile, ExpectedCounts, GenConfig};
pub use schema::{
    build_schemas, create_all, seed_observation, seed_static, CATALOG_TABLES, TABLE_COUNT,
};
pub use transform::{transform, TransformError};
