//! The catalog ASCII file format.
//!
//! §4.1: "The catalog information is first written to an ASCII file …
//! different aspects of the catalog information are interleaved in the
//! file. For example, a row of frame information is followed by four rows
//! of frame aperture information, and a row of object information is
//! followed by four rows of finger information. Usually each row in the
//! catalog data file has a tag or a keyword that can be used to determine
//! the destination table."
//!
//! Lines are `TAG|field|field|…`. Empty fields are NULLs. [`parse_line`]
//! produces a borrowed [`RawRecord`]; the loader reuses one line buffer and
//! transforms each record immediately (see `skycat::transform`).

use std::fmt;

/// The destination-table tag at the start of each catalog line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordTag {
    /// `ccd_columns` row.
    Ccd,
    /// `ccd_images` row.
    Img,
    /// `ccd_frames` row.
    Frm,
    /// `ccd_frame_apertures` row.
    Apr,
    /// `frame_statistics` row.
    Fst,
    /// `astrometry_solutions` row.
    Ast,
    /// `photometry_zeropoints` row.
    Zpt,
    /// `quality_checks` row.
    Qch,
    /// `objects` row.
    Obj,
    /// `fingers` row.
    Fng,
    /// `object_flags` row.
    Ofl,
}

/// All tags, in the nesting order they appear in files.
pub const ALL_TAGS: [RecordTag; 11] = [
    RecordTag::Ccd,
    RecordTag::Img,
    RecordTag::Frm,
    RecordTag::Apr,
    RecordTag::Fst,
    RecordTag::Ast,
    RecordTag::Zpt,
    RecordTag::Qch,
    RecordTag::Obj,
    RecordTag::Fng,
    RecordTag::Ofl,
];

impl RecordTag {
    /// Parse a tag keyword.
    pub fn from_keyword(s: &str) -> Option<RecordTag> {
        Some(match s {
            "CCD" => RecordTag::Ccd,
            "IMG" => RecordTag::Img,
            "FRM" => RecordTag::Frm,
            "APR" => RecordTag::Apr,
            "FST" => RecordTag::Fst,
            "AST" => RecordTag::Ast,
            "ZPT" => RecordTag::Zpt,
            "QCH" => RecordTag::Qch,
            "OBJ" => RecordTag::Obj,
            "FNG" => RecordTag::Fng,
            "OFL" => RecordTag::Ofl,
            _ => return None,
        })
    }

    /// The tag keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            RecordTag::Ccd => "CCD",
            RecordTag::Img => "IMG",
            RecordTag::Frm => "FRM",
            RecordTag::Apr => "APR",
            RecordTag::Fst => "FST",
            RecordTag::Ast => "AST",
            RecordTag::Zpt => "ZPT",
            RecordTag::Qch => "QCH",
            RecordTag::Obj => "OBJ",
            RecordTag::Fng => "FNG",
            RecordTag::Ofl => "OFL",
        }
    }

    /// The destination table.
    pub fn table_name(self) -> &'static str {
        match self {
            RecordTag::Ccd => "ccd_columns",
            RecordTag::Img => "ccd_images",
            RecordTag::Frm => "ccd_frames",
            RecordTag::Apr => "ccd_frame_apertures",
            RecordTag::Fst => "frame_statistics",
            RecordTag::Ast => "astrometry_solutions",
            RecordTag::Zpt => "photometry_zeropoints",
            RecordTag::Qch => "quality_checks",
            RecordTag::Obj => "objects",
            RecordTag::Fng => "fingers",
            RecordTag::Ofl => "object_flags",
        }
    }

    /// The exact number of `|`-separated fields after the tag.
    pub fn field_count(self) -> usize {
        match self {
            RecordTag::Ccd => 8,
            RecordTag::Img => 7,
            RecordTag::Frm => 9,
            RecordTag::Apr => 6,
            RecordTag::Fst => 6,
            RecordTag::Ast => 9,
            RecordTag::Zpt => 6,
            RecordTag::Qch => 4,
            RecordTag::Obj => 14,
            RecordTag::Fng => 6,
            RecordTag::Ofl => 4,
        }
    }
}

impl fmt::Display for RecordTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A parsed catalog line: tag + raw string fields (borrowed from the line).
#[derive(Debug, Clone, PartialEq)]
pub struct RawRecord<'a> {
    /// Destination-table tag.
    pub tag: RecordTag,
    /// Raw fields; empty strings are NULLs.
    pub fields: Vec<&'a str>,
}

/// A line-level parse failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// The line was empty or whitespace-only (skipped silently by readers,
    /// reported by [`parse_line`]).
    Blank,
    /// The tag keyword is unknown.
    UnknownTag(String),
    /// The field count does not match the tag.
    FieldCount {
        /// The line's tag.
        tag: RecordTag,
        /// Fields the tag requires.
        expected: usize,
        /// Fields found.
        got: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Blank => f.write_str("blank line"),
            ParseError::UnknownTag(t) => write!(f, "unknown tag {t:?}"),
            ParseError::FieldCount { tag, expected, got } => {
                write!(f, "{tag} line has {got} fields, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse one catalog line.
pub fn parse_line(line: &str) -> Result<RawRecord<'_>, ParseError> {
    let line = line.trim_end_matches(['\r', '\n']);
    if line.trim().is_empty() {
        return Err(ParseError::Blank);
    }
    let mut parts = line.split('|');
    let keyword = parts.next().unwrap_or("");
    let tag = RecordTag::from_keyword(keyword)
        .ok_or_else(|| ParseError::UnknownTag(keyword.to_owned()))?;
    let fields: Vec<&str> = parts.collect();
    if fields.len() != tag.field_count() {
        return Err(ParseError::FieldCount {
            tag,
            expected: tag.field_count(),
            got: fields.len(),
        });
    }
    Ok(RawRecord { tag, fields })
}

/// Format a catalog line from a tag and field strings.
pub fn format_line(tag: RecordTag, fields: &[String]) -> String {
    debug_assert_eq!(fields.len(), tag.field_count(), "field count for {tag}");
    let mut line = String::with_capacity(8 + fields.iter().map(|f| f.len() + 1).sum::<usize>());
    line.push_str(tag.keyword());
    for f in fields {
        line.push('|');
        line.push_str(f);
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_keyword_roundtrip() {
        for tag in ALL_TAGS {
            assert_eq!(RecordTag::from_keyword(tag.keyword()), Some(tag));
        }
        assert_eq!(RecordTag::from_keyword("XYZ"), None);
        assert_eq!(RecordTag::from_keyword(""), None);
    }

    #[test]
    fn parse_valid_line() {
        let rec = parse_line("QCH|1|2|flatness|1\n").unwrap();
        assert_eq!(rec.tag, RecordTag::Qch);
        assert_eq!(rec.fields, vec!["1", "2", "flatness", "1"]);
    }

    #[test]
    fn parse_preserves_empty_fields_as_nulls() {
        let rec = parse_line("FST|1|2|10|||0.5").unwrap();
        assert_eq!(rec.fields[3], "");
        assert_eq!(rec.fields[4], "");
        assert_eq!(rec.fields[5], "0.5");
    }

    #[test]
    fn parse_rejects_bad_lines() {
        assert_eq!(parse_line(""), Err(ParseError::Blank));
        assert_eq!(parse_line("   \n"), Err(ParseError::Blank));
        assert!(matches!(
            parse_line("BOGUS|1|2"),
            Err(ParseError::UnknownTag(_))
        ));
        assert!(matches!(
            parse_line("QCH|1|2|flatness"),
            Err(ParseError::FieldCount {
                expected: 4,
                got: 3,
                ..
            })
        ));
        assert!(matches!(
            parse_line("QCH|1|2|flatness|1|extra"),
            Err(ParseError::FieldCount { got: 5, .. })
        ));
    }

    #[test]
    fn format_then_parse_roundtrip() {
        let fields: Vec<String> = vec!["9".into(), "8".into(), "focus".into(), "0".into()];
        let line = format_line(RecordTag::Qch, &fields);
        assert_eq!(line, "QCH|9|8|focus|0");
        let rec = parse_line(&line).unwrap();
        assert_eq!(rec.fields, vec!["9", "8", "focus", "0"]);
    }

    #[test]
    fn tables_match_catalog_constant() {
        for tag in ALL_TAGS {
            assert!(
                crate::schema::CATALOG_TABLES.contains(&tag.table_name()),
                "{tag} maps to unknown table"
            );
        }
        assert_eq!(ALL_TAGS.len(), crate::schema::CATALOG_TABLES.len());
    }
}
