//! The Palomar-Quest repository data model: 23 tables (paper Fig. 1).
//!
//! The paper shows only table names and relationship edges; this module
//! reconstructs a schema with the stated structure: "A primary key is
//! defined in each table … Most tables have one or more foreign keys",
//! static metadata tables "less than 100 rows", the `objects` table
//! "expected to grow beyond a billion rows", frames with 4 apertures and
//! objects with 4 fingers interleaved in the catalog files.
//!
//! The FK graph forms chains up to 7 deep:
//! `nights → observations → ccd_columns → ccd_images → ccd_frames →
//! objects → fingers`, which is what makes parent-before-child flush
//! ordering (paper Fig. 2) non-trivial.

use skydb::engine::Engine;
use skydb::error::DbResult;
use skydb::expr::{CmpOp, Expr};
use skydb::schema::{TableBuilder, TableSchema};
use skydb::value::{DataType, Value};

/// Number of tables in the repository data model (paper Fig. 1).
pub const TABLE_COUNT: usize = 23;

/// Names of the tables populated from catalog data files, in
/// parent-before-child order. (The remaining tables are static metadata
/// seeded before loading; see [`seed_static`].)
pub const CATALOG_TABLES: [&str; 11] = [
    "ccd_columns",
    "ccd_images",
    "ccd_frames",
    "ccd_frame_apertures",
    "frame_statistics",
    "astrometry_solutions",
    "photometry_zeropoints",
    "quality_checks",
    "objects",
    "fingers",
    "object_flags",
];

/// Build all 23 table schemas in parent-before-child (definition) order.
pub fn build_schemas() -> Vec<TableSchema> {
    let int = DataType::Int;
    let float = DataType::Float;
    let ts = DataType::Timestamp;
    let text = DataType::Text;

    let mut tables = Vec::with_capacity(TABLE_COUNT);

    // -------------------------------------------------- static metadata
    tables.push(
        TableBuilder::new("telescopes")
            .col("telescope_id", int)
            .col("name", text(64))
            .col("site", text(64))
            .col("aperture_m", float)
            .pk(&["telescope_id"])
            .check("chk_aperture", Expr::cmp(3, CmpOp::Gt, 0.0f64))
            .build()
            .expect("telescopes schema"),
    );
    tables.push(
        TableBuilder::new("cameras")
            .col("camera_id", int)
            .col("telescope_id", int)
            .col("name", text(64))
            .col("n_ccds", int)
            .pk(&["camera_id"])
            .fk("fk_cameras_telescope", &["telescope_id"], "telescopes")
            .check("chk_n_ccds", Expr::cmp(3, CmpOp::Gt, 0i64))
            .build()
            .expect("cameras schema"),
    );
    tables.push(
        TableBuilder::new("filters")
            .col("filter_id", int)
            .col("name", text(16))
            .col("wavelength_nm", float)
            .pk(&["filter_id"])
            .unique("u_filters_name", &["name"])
            .build()
            .expect("filters schema"),
    );
    tables.push(
        TableBuilder::new("pipelines")
            .col("pipeline_id", int)
            .col("name", text(64))
            .col("version", text(16))
            .pk(&["pipeline_id"])
            .build()
            .expect("pipelines schema"),
    );
    tables.push(
        TableBuilder::new("parameters")
            .col("param_id", int)
            .col("pipeline_id", int)
            .col("name", text(64))
            .col("value", text(64))
            .pk(&["param_id"])
            .fk("fk_parameters_pipeline", &["pipeline_id"], "pipelines")
            .build()
            .expect("parameters schema"),
    );
    tables.push(
        TableBuilder::new("ccd_chips")
            .col("ccd_id", int)
            .col("camera_id", int)
            .col("col_pos", int)
            .col("row_pos", int)
            .col("good_pixel_frac", float)
            .pk(&["ccd_id"])
            .fk("fk_ccd_chips_camera", &["camera_id"], "cameras")
            .check("chk_good_frac", Expr::between(4, 0.0f64, 1.0f64))
            .build()
            .expect("ccd_chips schema"),
    );
    tables.push(
        TableBuilder::new("observers")
            .col("observer_id", int)
            .col("name", text(64))
            .col("affiliation", text(64))
            .pk(&["observer_id"])
            .build()
            .expect("observers schema"),
    );
    tables.push(
        TableBuilder::new("calibration_sets")
            .col("calib_id", int)
            .col("pipeline_id", int)
            .col("name", text(64))
            .col("valid_from", ts)
            .pk(&["calib_id"])
            .fk("fk_calibration_pipeline", &["pipeline_id"], "pipelines")
            .build()
            .expect("calibration_sets schema"),
    );
    tables.push(
        TableBuilder::new("sky_regions")
            .col("region_id", int)
            .col("name", text(32))
            .col("ra_min", float)
            .col("ra_max", float)
            .col("dec_min", float)
            .col("dec_max", float)
            .pk(&["region_id"])
            .check("chk_region_ra", Expr::between(2, 0.0f64, 360.0f64))
            .check("chk_region_dec", Expr::between(4, -90.0f64, 90.0f64))
            .build()
            .expect("sky_regions schema"),
    );

    // ----------------------------------------------- per-night metadata
    tables.push(
        TableBuilder::new("nights")
            .col("night_id", int)
            .col("date_mjd", float)
            .col_null("seeing_arcsec", float)
            .col_null("sky_brightness", float)
            .pk(&["night_id"])
            .build()
            .expect("nights schema"),
    );
    tables.push(
        TableBuilder::new("observations")
            .col("obs_id", int)
            .col("night_id", int)
            .col("telescope_id", int)
            .col("filter_id", int)
            .col("observer_id", int)
            .col("region_id", int)
            .col("start_time", ts)
            .col("duration_s", float)
            .col_null("airmass", float)
            .col("ra_center", float)
            .col("dec_center", float)
            .pk(&["obs_id"])
            .fk("fk_obs_night", &["night_id"], "nights")
            .fk("fk_obs_telescope", &["telescope_id"], "telescopes")
            .fk("fk_obs_filter", &["filter_id"], "filters")
            .fk("fk_obs_observer", &["observer_id"], "observers")
            .fk("fk_obs_region", &["region_id"], "sky_regions")
            .check("chk_obs_ra", Expr::between(9, 0.0f64, 360.0f64))
            .check("chk_obs_dec", Expr::between(10, -90.0f64, 90.0f64))
            .build()
            .expect("observations schema"),
    );
    tables.push(
        TableBuilder::new("observation_logs")
            .col("log_id", int)
            .col("obs_id", int)
            .col("t_offset_s", float)
            .col("entry", text(255))
            .pk(&["log_id"])
            .fk("fk_logs_obs", &["obs_id"], "observations")
            .build()
            .expect("observation_logs schema"),
    );

    // ------------------------------------------------- catalog-fed data
    tables.push(
        TableBuilder::new("ccd_columns")
            .col("ccd_col_id", int)
            .col("obs_id", int)
            .col("ccd_id", int)
            .col("col_index", int)
            .col("ra_min", float)
            .col("ra_max", float)
            .col("dec_min", float)
            .col("dec_max", float)
            .pk(&["ccd_col_id"])
            .fk("fk_ccdcol_obs", &["obs_id"], "observations")
            .fk("fk_ccdcol_chip", &["ccd_id"], "ccd_chips")
            .build()
            .expect("ccd_columns schema"),
    );
    tables.push(
        TableBuilder::new("ccd_images")
            .col("image_id", int)
            .col("ccd_col_id", int)
            .col("seq_no", int)
            .col("mjd_start", float)
            .col("exptime_s", float)
            .col("gain", float)
            .col("read_noise", float)
            .pk(&["image_id"])
            .fk("fk_images_ccdcol", &["ccd_col_id"], "ccd_columns")
            .check("chk_exptime", Expr::cmp(4, CmpOp::Gt, 0.0f64))
            .build()
            .expect("ccd_images schema"),
    );
    tables.push(
        TableBuilder::new("ccd_frames")
            .col("frame_id", int)
            .col("image_id", int)
            .col("frame_no", int)
            .col("ra_min", float)
            .col("ra_max", float)
            .col("dec_min", float)
            .col("dec_max", float)
            .col_null("sky_level", float)
            .col_null("fwhm_arcsec", float)
            .pk(&["frame_id"])
            .fk("fk_frames_image", &["image_id"], "ccd_images")
            .check("chk_frame_ra", Expr::between(3, 0.0f64, 360.0f64))
            .build()
            .expect("ccd_frames schema"),
    );
    tables.push(
        TableBuilder::new("ccd_frame_apertures")
            .col("aperture_id", int)
            .col("frame_id", int)
            .col("aperture_no", int)
            .col("radius_px", float)
            .col("annulus_in_px", float)
            .col("annulus_out_px", float)
            .pk(&["aperture_id"])
            .fk("fk_apertures_frame", &["frame_id"], "ccd_frames")
            .check("chk_aperture_no", Expr::between(2, 1i64, 4i64))
            .check("chk_radius", Expr::cmp(3, CmpOp::Gt, 0.0f64))
            .build()
            .expect("ccd_frame_apertures schema"),
    );
    tables.push(
        TableBuilder::new("frame_statistics")
            .col("stat_id", int)
            .col("frame_id", int)
            .col("n_detections", int)
            .col_null("mean_mag", float)
            .col_null("sky_sigma", float)
            .col_null("saturation_frac", float)
            .pk(&["stat_id"])
            .fk("fk_stats_frame", &["frame_id"], "ccd_frames")
            .check("chk_n_detections", Expr::cmp(2, CmpOp::Ge, 0i64))
            .build()
            .expect("frame_statistics schema"),
    );
    tables.push(
        TableBuilder::new("astrometry_solutions")
            .col("astro_id", int)
            .col("frame_id", int)
            .col("crval1", float)
            .col("crval2", float)
            .col("cd1_1", float)
            .col("cd1_2", float)
            .col("cd2_1", float)
            .col("cd2_2", float)
            .col_null("rms_arcsec", float)
            .pk(&["astro_id"])
            .fk("fk_astro_frame", &["frame_id"], "ccd_frames")
            .build()
            .expect("astrometry_solutions schema"),
    );
    tables.push(
        TableBuilder::new("photometry_zeropoints")
            .col("zp_id", int)
            .col("frame_id", int)
            .col("filter_id", int)
            .col("zeropoint", float)
            .col_null("zp_err", float)
            .col_null("extinction", float)
            .pk(&["zp_id"])
            .fk("fk_zp_frame", &["frame_id"], "ccd_frames")
            .fk("fk_zp_filter", &["filter_id"], "filters")
            .check("chk_zeropoint", Expr::between(3, 10.0f64, 40.0f64))
            .build()
            .expect("photometry_zeropoints schema"),
    );
    tables.push(
        TableBuilder::new("quality_checks")
            .col("qc_id", int)
            .col("frame_id", int)
            .col("check_name", text(32))
            .col("passed", DataType::Bool)
            .pk(&["qc_id"])
            .fk("fk_qc_frame", &["frame_id"], "ccd_frames")
            .build()
            .expect("quality_checks schema"),
    );
    tables.push(
        TableBuilder::new("objects")
            .col("object_id", int)
            .col("frame_id", int)
            .col("ra", float)
            .col("dec", float)
            .col("htmid", int)
            .col("gal_l", float)
            .col("gal_b", float)
            .col_null("mag_auto", float)
            .col_null("mag_err", float)
            .col("flux", float)
            .col_null("flux_err", float)
            .col_null("fwhm_px", float)
            .col_null("ellipticity", float)
            .col_null("theta_deg", float)
            .col("flags", int)
            .col("x_px", float)
            .col("y_px", float)
            .pk(&["object_id"])
            .fk("fk_objects_frame", &["frame_id"], "ccd_frames")
            .check("chk_obj_ra", Expr::between(2, 0.0f64, 360.0f64))
            .check("chk_obj_dec", Expr::between(3, -90.0f64, 90.0f64))
            .check("chk_obj_mag", Expr::between(7, -5.0f64, 40.0f64))
            .check("chk_obj_flags", Expr::cmp(14, CmpOp::Ge, 0i64))
            .build()
            .expect("objects schema"),
    );
    tables.push(
        TableBuilder::new("fingers")
            .col("finger_id", int)
            .col("object_id", int)
            .col("finger_no", int)
            .col("dx_px", float)
            .col("dy_px", float)
            .col("flux_frac", float)
            .pk(&["finger_id"])
            .fk("fk_fingers_object", &["object_id"], "objects")
            .check("chk_finger_no", Expr::between(2, 1i64, 4i64))
            .check("chk_flux_frac", Expr::between(5, 0.0f64, 1.0f64))
            .build()
            .expect("fingers schema"),
    );
    tables.push(
        TableBuilder::new("object_flags")
            .col("flag_id", int)
            .col("object_id", int)
            .col("flag_name", text(32))
            .col("flag_value", int)
            .pk(&["flag_id"])
            .fk("fk_oflags_object", &["object_id"], "objects")
            .build()
            .expect("object_flags schema"),
    );

    assert_eq!(tables.len(), TABLE_COUNT, "Fig. 1 shows 23 tables");
    tables
}

/// Create all 23 tables on an engine.
pub fn create_all(engine: &Engine) -> DbResult<()> {
    for schema in build_schemas() {
        engine.create_table(schema)?;
    }
    Ok(())
}

/// Number of CCDs in the Palomar-Quest camera (§2: "112 Charge-Coupled
/// Devices").
pub const N_CCDS: i64 = 112;

/// Seed the static metadata tables (telescopes, camera, 112 CCDs, filters,
/// pipelines, observers, …). These are the static metadata tables "\[with\]
/// less than 100 rows" that exist before catalog loading begins.
pub fn seed_static(engine: &Engine) -> DbResult<()> {
    let txn = engine.begin();
    let t = |name: &str| engine.table_id(name).expect("schema created");

    engine.insert_row(
        txn,
        t("telescopes"),
        &[
            Value::Int(1),
            "Samuel Oschin Telescope".into(),
            "Palomar Observatory".into(),
            Value::Float(1.22),
        ],
    )?;
    engine.insert_row(
        txn,
        t("cameras"),
        &[
            Value::Int(1),
            Value::Int(1),
            "QUEST Large Area Camera".into(),
            Value::Int(N_CCDS),
        ],
    )?;
    for (i, (name, wl)) in [
        ("u", 365.0),
        ("g", 475.0),
        ("r", 622.0),
        ("i", 763.0),
        ("z", 905.0),
    ]
    .iter()
    .enumerate()
    {
        engine.insert_row(
            txn,
            t("filters"),
            &[Value::Int(i as i64 + 1), (*name).into(), Value::Float(*wl)],
        )?;
    }
    engine.insert_row(
        txn,
        t("pipelines"),
        &[Value::Int(1), "quest-extract".into(), "2.3".into()],
    )?;
    for (i, (name, value)) in [
        ("detect_sigma", "1.5"),
        ("deblend_levels", "32"),
        ("aperture_count", "4"),
    ]
    .iter()
    .enumerate()
    {
        engine.insert_row(
            txn,
            t("parameters"),
            &[
                Value::Int(i as i64 + 1),
                Value::Int(1),
                (*name).into(),
                (*value).into(),
            ],
        )?;
    }
    // The camera: 112 CCDs in 28 columns × 4 rows.
    for ccd in 0..N_CCDS {
        engine.insert_row(
            txn,
            t("ccd_chips"),
            &[
                Value::Int(ccd + 1),
                Value::Int(1),
                Value::Int(ccd % 28),
                Value::Int(ccd / 28),
                Value::Float(0.97 + 0.0002 * (ccd % 100) as f64),
            ],
        )?;
    }
    engine.insert_row(
        txn,
        t("observers"),
        &[
            Value::Int(1),
            "PQ Survey Operations".into(),
            "Caltech/Yale".into(),
        ],
    )?;
    engine.insert_row(
        txn,
        t("calibration_sets"),
        &[
            Value::Int(1),
            Value::Int(1),
            "2004B-photometric".into(),
            Value::Timestamp(1_096_588_800_000_000),
        ],
    )?;
    engine.insert_row(
        txn,
        t("sky_regions"),
        &[
            Value::Int(1),
            "equatorial-stripe".into(),
            Value::Float(0.0),
            Value::Float(360.0),
            Value::Float(-25.0),
            Value::Float(25.0),
        ],
    )?;
    engine.commit(txn)?;
    Ok(())
}

/// Seed one night + one observation header. The 28 catalog files of the
/// observation reference `obs_id`; seeding it first keeps the files
/// independently loadable in parallel (§4.4), just as the production
/// pipeline registered observations before catalog extraction.
pub fn seed_observation(engine: &Engine, night_id: i64, obs_id: i64) -> DbResult<()> {
    let txn = engine.begin();
    let t = |name: &str| engine.table_id(name).expect("schema created");
    engine.insert_row(
        txn,
        t("nights"),
        &[
            Value::Int(night_id),
            Value::Float(53_500.0 + night_id as f64),
            Value::Float(1.2),
            Value::Float(21.1),
        ],
    )?;
    engine.insert_row(
        txn,
        t("observations"),
        &[
            Value::Int(obs_id),
            Value::Int(night_id),
            Value::Int(1),
            Value::Int(3), // r band
            Value::Int(1),
            Value::Int(1),
            Value::Timestamp(1_117_584_000_000_000 + obs_id * 3_600_000_000),
            Value::Float(140.0),
            Value::Float(1.15),
            Value::Float(180.0),
            Value::Float(0.0),
        ],
    )?;
    engine.insert_row(
        txn,
        t("observation_logs"),
        &[
            Value::Int(obs_id * 10),
            Value::Int(obs_id),
            Value::Float(0.0),
            "drift scan started".into(),
        ],
    )?;
    engine.commit(txn)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_three_tables_build() {
        let schemas = build_schemas();
        assert_eq!(schemas.len(), 23);
        let names: Vec<&str> = schemas.iter().map(|s| s.name.as_str()).collect();
        for required in [
            "observations",
            "ccd_columns",
            "ccd_frames",
            "ccd_frame_apertures",
            "objects",
            "fingers",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
    }

    #[test]
    fn creates_on_engine_in_topological_order() {
        let e = Engine::for_tests();
        create_all(&e).unwrap();
        assert_eq!(e.table_count(), 23);
        // Definition order must already be topological (checked inside).
        let order = e.tables_topological();
        assert_eq!(order.len(), 23);
    }

    #[test]
    fn fk_chain_depth_reaches_fingers() {
        let e = Engine::for_tests();
        create_all(&e).unwrap();
        let schemas = build_schemas();
        let mut cat = skydb::schema::Catalog::new();
        for s in schemas {
            cat.add_table(s).unwrap();
        }
        let depths = cat.fk_depths();
        let fingers = cat.table_id("fingers").unwrap();
        assert!(
            depths[fingers.index()] >= 6,
            "fingers should sit at FK depth ≥ 6, got {}",
            depths[fingers.index()]
        );
    }

    #[test]
    fn seed_static_populates_dimensions() {
        let e = Engine::for_tests();
        create_all(&e).unwrap();
        seed_static(&e).unwrap();
        let chips = e.table_id("ccd_chips").unwrap();
        assert_eq!(e.row_count(chips), 112);
        let filters = e.table_id("filters").unwrap();
        assert_eq!(e.row_count(filters), 5);
    }

    #[test]
    fn seed_observation_links_to_dimensions() {
        let e = Engine::for_tests();
        create_all(&e).unwrap();
        seed_static(&e).unwrap();
        seed_observation(&e, 1, 100).unwrap();
        let obs = e.table_id("observations").unwrap();
        assert_eq!(e.row_count(obs), 1);
        // Second observation on the same night: night PK already exists.
        let err = seed_observation(&e, 1, 101).unwrap_err();
        assert_eq!(
            err.constraint_kind(),
            Some(skydb::error::ConstraintKind::PrimaryKey)
        );
    }

    #[test]
    fn catalog_tables_constant_matches_schema() {
        let e = Engine::for_tests();
        create_all(&e).unwrap();
        for name in CATALOG_TABLES {
            assert!(e.table_id(name).is_ok(), "catalog table {name} missing");
        }
    }
}
