//! Parse → validate → transform → compute: raw catalog fields to typed rows.
//!
//! §3: "it is often necessary to perform complex data transformations and
//! computations during the loading process. These operations include
//! transformations to convert data types and change precision, validation
//! to filter out errors and outliers, and calculation of values such as the
//! Hierarchical Triangular Mesh ID (htmid) and sky coordinates."
//!
//! All of that happens here, per row, on the loader client:
//!
//! * numeric fields are parsed (validation),
//! * object magnitudes arrive as integer **millimags** and are converted to
//!   float mags at 3-decimal precision (type + precision conversion),
//! * `htmid` (depth 20) and galactic `(l, b)` are **computed** from ra/dec,
//!
//! exactly the per-row work the paper's loader performs before buffering a
//! row into the array-set.

use std::fmt;

use skydb::value::{Row, Value};
use skyhtm::{equatorial_to_galactic, htmid, CATALOG_DEPTH};

use crate::format::{RawRecord, RecordTag};

/// A per-row transformation failure (the row is skippable, not fatal).
#[derive(Debug, Clone, PartialEq)]
pub struct TransformError {
    /// Which field failed (index after the tag).
    pub field: usize,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "field {}: {}", self.field, self.detail)
    }
}

impl std::error::Error for TransformError {}

fn err(field: usize, detail: impl Into<String>) -> TransformError {
    TransformError {
        field,
        detail: detail.into(),
    }
}

fn p_i64(fields: &[&str], i: usize) -> Result<i64, TransformError> {
    fields[i]
        .parse::<i64>()
        .map_err(|e| err(i, format!("bad integer {:?}: {e}", fields[i])))
}

fn p_f64(fields: &[&str], i: usize) -> Result<f64, TransformError> {
    let v = fields[i]
        .parse::<f64>()
        .map_err(|e| err(i, format!("bad float {:?}: {e}", fields[i])))?;
    if !v.is_finite() {
        return Err(err(i, format!("non-finite float {:?}", fields[i])));
    }
    Ok(v)
}

fn p_opt_f64(fields: &[&str], i: usize) -> Result<Value, TransformError> {
    if fields[i].is_empty() {
        Ok(Value::Null)
    } else {
        p_f64(fields, i).map(Value::Float)
    }
}

fn p_opt_millimag(fields: &[&str], i: usize) -> Result<Value, TransformError> {
    if fields[i].is_empty() {
        return Ok(Value::Null);
    }
    // Type conversion + precision change: integer millimags → float mags
    // rounded to 3 decimals.
    let milli = fields[i]
        .parse::<i64>()
        .map_err(|e| err(i, format!("bad millimag {:?}: {e}", fields[i])))?;
    Ok(Value::Float((milli as f64) / 1000.0))
}

fn p_bool(fields: &[&str], i: usize) -> Result<bool, TransformError> {
    match fields[i] {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(err(i, format!("bad boolean {other:?}"))),
    }
}

/// Transform one parsed catalog record into `(destination table, typed row)`.
///
/// The returned row matches the destination table's column order exactly.
pub fn transform(rec: &RawRecord<'_>) -> Result<(&'static str, Row), TransformError> {
    let f = &rec.fields[..];
    let row = match rec.tag {
        RecordTag::Ccd => vec![
            Value::Int(p_i64(f, 0)?), // ccd_col_id
            Value::Int(p_i64(f, 1)?), // obs_id
            Value::Int(p_i64(f, 2)?), // ccd_id
            Value::Int(p_i64(f, 3)?), // col_index
            Value::Float(p_f64(f, 4)?),
            Value::Float(p_f64(f, 5)?),
            Value::Float(p_f64(f, 6)?),
            Value::Float(p_f64(f, 7)?),
        ],
        RecordTag::Img => vec![
            Value::Int(p_i64(f, 0)?),
            Value::Int(p_i64(f, 1)?),
            Value::Int(p_i64(f, 2)?),
            Value::Float(p_f64(f, 3)?),
            Value::Float(p_f64(f, 4)?),
            Value::Float(p_f64(f, 5)?),
            Value::Float(p_f64(f, 6)?),
        ],
        RecordTag::Frm => vec![
            Value::Int(p_i64(f, 0)?),
            Value::Int(p_i64(f, 1)?),
            Value::Int(p_i64(f, 2)?),
            Value::Float(p_f64(f, 3)?),
            Value::Float(p_f64(f, 4)?),
            Value::Float(p_f64(f, 5)?),
            Value::Float(p_f64(f, 6)?),
            p_opt_f64(f, 7)?,
            p_opt_f64(f, 8)?,
        ],
        RecordTag::Apr => vec![
            Value::Int(p_i64(f, 0)?),
            Value::Int(p_i64(f, 1)?),
            Value::Int(p_i64(f, 2)?),
            Value::Float(p_f64(f, 3)?),
            Value::Float(p_f64(f, 4)?),
            Value::Float(p_f64(f, 5)?),
        ],
        RecordTag::Fst => vec![
            Value::Int(p_i64(f, 0)?),
            Value::Int(p_i64(f, 1)?),
            Value::Int(p_i64(f, 2)?),
            p_opt_f64(f, 3)?,
            p_opt_f64(f, 4)?,
            p_opt_f64(f, 5)?,
        ],
        RecordTag::Ast => vec![
            Value::Int(p_i64(f, 0)?),
            Value::Int(p_i64(f, 1)?),
            Value::Float(p_f64(f, 2)?),
            Value::Float(p_f64(f, 3)?),
            Value::Float(p_f64(f, 4)?),
            Value::Float(p_f64(f, 5)?),
            Value::Float(p_f64(f, 6)?),
            Value::Float(p_f64(f, 7)?),
            p_opt_f64(f, 8)?,
        ],
        RecordTag::Zpt => vec![
            Value::Int(p_i64(f, 0)?),
            Value::Int(p_i64(f, 1)?),
            Value::Int(p_i64(f, 2)?),
            Value::Float(p_f64(f, 3)?),
            p_opt_f64(f, 4)?,
            p_opt_f64(f, 5)?,
        ],
        RecordTag::Qch => vec![
            Value::Int(p_i64(f, 0)?),
            Value::Int(p_i64(f, 1)?),
            Value::Text(f[2].to_owned()),
            Value::Bool(p_bool(f, 3)?),
        ],
        RecordTag::Obj => {
            let object_id = p_i64(f, 0)?;
            let frame_id = p_i64(f, 1)?;
            let ra = p_f64(f, 2)?;
            let dec = p_f64(f, 3)?;
            // Computed columns. Out-of-range coordinates still produce a
            // row (with a degenerate htmid); the database CHECK constraints
            // are the arbiter of validity, as in the paper ("stringent data
            // checking is performed by the database").
            let (id, gal_l, gal_b) = if (0.0..360.0).contains(&ra) && (-90.0..=90.0).contains(&dec)
            {
                let h = htmid(ra, dec, CATALOG_DEPTH) as i64;
                let (l, b) = equatorial_to_galactic(ra, dec);
                (h, l, b)
            } else {
                (8i64 << (2 * CATALOG_DEPTH), 0.0, 0.0)
            };
            let flux_adu = p_i64(f, 4)?; // integer ADU from the extractor
            vec![
                Value::Int(object_id),
                Value::Int(frame_id),
                Value::Float(ra),
                Value::Float(dec),
                Value::Int(id),
                Value::Float(round3(gal_l)),
                Value::Float(round3(gal_b)),
                p_opt_millimag(f, 6)?, // mag_auto
                p_opt_millimag(f, 7)?, // mag_err
                Value::Float(flux_adu as f64),
                p_opt_f64(f, 5)?,            // flux_err
                p_opt_f64(f, 8)?,            // fwhm_px
                p_opt_f64(f, 9)?,            // ellipticity
                p_opt_f64(f, 10)?,           // theta_deg
                Value::Int(p_i64(f, 11)?),   // flags
                Value::Float(p_f64(f, 12)?), // x_px
                Value::Float(p_f64(f, 13)?), // y_px
            ]
        }
        RecordTag::Fng => vec![
            Value::Int(p_i64(f, 0)?),
            Value::Int(p_i64(f, 1)?),
            Value::Int(p_i64(f, 2)?),
            Value::Float(p_f64(f, 3)?),
            Value::Float(p_f64(f, 4)?),
            Value::Float(p_f64(f, 5)?),
        ],
        RecordTag::Ofl => vec![
            Value::Int(p_i64(f, 0)?),
            Value::Int(p_i64(f, 1)?),
            Value::Text(f[2].to_owned()),
            Value::Int(p_i64(f, 3)?),
        ],
    };
    Ok((rec.tag.table_name(), row))
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::parse_line;

    #[test]
    fn obj_row_computes_htmid_and_galactic() {
        // Sgr A*-ish position.
        let line = "OBJ|42|7|266.416800|-29.007800|15000|1.2|17345|55||0.8|45.0|0|100.5|200.5";
        let rec = parse_line(line).unwrap();
        let (table, row) = transform(&rec).unwrap();
        assert_eq!(table, "objects");
        assert_eq!(row.len(), 17);
        assert_eq!(row[0], Value::Int(42));
        // htmid matches a direct computation.
        let expect = htmid(266.4168, -29.0078, CATALOG_DEPTH) as i64;
        assert_eq!(row[4], Value::Int(expect));
        // Galactic longitude near 359.944.
        let Value::Float(l) = row[5] else { panic!() };
        assert!((l - 359.944).abs() < 0.01, "l = {l}");
        // Millimag → mag conversion.
        assert_eq!(row[7], Value::Float(17.345));
        assert_eq!(row[8], Value::Float(0.055));
        // fwhm was empty → NULL.
        assert_eq!(row[11], Value::Null);
    }

    #[test]
    fn obj_bad_numeric_rejected() {
        let line = "OBJ|42|7|not-a-number|-29.0|15000|1.2|17345|55||0.8|45.0|0|100.5|200.5";
        let rec = parse_line(line).unwrap();
        let e = transform(&rec).unwrap_err();
        assert_eq!(e.field, 2);
        assert!(e.detail.contains("bad float"));
    }

    #[test]
    fn obj_out_of_range_coords_pass_through_for_db_check() {
        let line = "OBJ|42|7|400.0|-29.0|15000|1.2|17345|55||0.8|45.0|0|100.5|200.5";
        let rec = parse_line(line).unwrap();
        let (_, row) = transform(&rec).unwrap();
        assert_eq!(
            row[2],
            Value::Float(400.0),
            "ra preserved for CHECK to reject"
        );
    }

    #[test]
    fn frm_nullable_tail_fields() {
        let rec = parse_line("FRM|1000|100|3|180.0|180.3|-1.0|1.0||").unwrap();
        let (table, row) = transform(&rec).unwrap();
        assert_eq!(table, "ccd_frames");
        assert_eq!(row[7], Value::Null);
        assert_eq!(row[8], Value::Null);
    }

    #[test]
    fn qch_boolean_parsing() {
        let rec = parse_line("QCH|5|1000|flatness|1").unwrap();
        let (_, row) = transform(&rec).unwrap();
        assert_eq!(row[3], Value::Bool(true));
        let rec = parse_line("QCH|5|1000|flatness|2").unwrap();
        assert!(transform(&rec).is_err());
    }

    #[test]
    fn all_tags_transform_to_matching_schemas() {
        // Every transformed row must match the destination schema's arity
        // and column types — this pins transform ↔ schema consistency.
        let engine = skydb::engine::Engine::for_tests();
        crate::schema::create_all(&engine).unwrap();
        let samples = [
            "CCD|1|100|5|0|180.0|180.5|-1.2|1.2",
            "IMG|10|1|0|53500.5|140.0|2.5|11.0",
            "FRM|100|10|0|180.0|180.1|-1.2|1.2|850.3|1.4",
            "APR|1000|100|1|3.0|6.0|9.0",
            "FST|2000|100|523|18.2|12.1|0.01",
            "AST|3000|100|180.05|0.0|0.0002|0.0|0.0|0.0002|0.11",
            "ZPT|4000|100|3|24.5|0.03|0.11",
            "QCH|5000|100|astrom-rms|1",
            "OBJ|50000|100|180.05|0.5|2345|4.8|18912|43|1.3|0.12|30.0|0|512.2|1033.8",
            "FNG|70000|50000|1|0.5|-0.5|0.31",
            "OFL|90000|50000|saturated|0",
        ];
        for line in samples {
            let rec = parse_line(line).unwrap();
            let (table, row) =
                transform(&rec).unwrap_or_else(|e| panic!("transform failed for {line}: {e}"));
            let tid = engine.table_id(table).unwrap();
            let schema = engine.schema(tid);
            assert_eq!(
                row.len(),
                schema.columns.len(),
                "arity mismatch for {table}"
            );
            for (i, (v, c)) in row.iter().zip(schema.columns.iter()).enumerate() {
                if !v.is_null() {
                    v.matches_type(c.dtype)
                        .unwrap_or_else(|e| panic!("{table}.{} (col {i}): {e}", c.name));
                }
            }
        }
    }

    #[test]
    fn round3_behaviour() {
        assert_eq!(round3(1.23456), 1.235);
        assert_eq!(round3(-0.0004), -0.0);
    }
}
