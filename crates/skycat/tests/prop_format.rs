//! Property tests for the catalog format and transform pipeline: hostile
//! input must never panic, and valid input must round-trip.

use proptest::prelude::*;

use skycat::format::{format_line, parse_line, RecordTag, ALL_TAGS};
use skycat::gen::{generate_file, GenConfig};
use skycat::transform::transform;

fn tag_strategy() -> impl Strategy<Value = RecordTag> {
    prop::sample::select(ALL_TAGS.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse_line never panics on arbitrary input.
    #[test]
    fn parse_never_panics(line in ".{0,200}") {
        let _ = parse_line(&line);
    }

    /// transform never panics on anything that parses.
    #[test]
    fn transform_never_panics(line in "[A-Z]{3}(\\|[-a-zA-Z0-9._ ]{0,12}){0,20}") {
        if let Ok(rec) = parse_line(&line) {
            let _ = transform(&rec);
        }
    }

    /// format → parse round-trips any pipe-free field content.
    #[test]
    fn format_parse_roundtrip(tag in tag_strategy(),
                              seed_fields in prop::collection::vec("[-a-zA-Z0-9._ ]{0,16}", 0..20)) {
        let mut fields: Vec<String> = seed_fields;
        fields.resize(tag.field_count(), String::new());
        let line = format_line(tag, &fields);
        let rec = parse_line(&line).unwrap();
        prop_assert_eq!(rec.tag, tag);
        let got: Vec<String> = rec.fields.iter().map(|s| s.to_string()).collect();
        prop_assert_eq!(got, fields);
    }

    /// Wrong field counts are always rejected, for every tag.
    #[test]
    fn field_count_enforced(tag in tag_strategy(), delta in 1usize..4, add in any::<bool>()) {
        let n = if add {
            tag.field_count() + delta
        } else {
            tag.field_count().saturating_sub(delta)
        };
        if n != tag.field_count() {
            let line = std::iter::once(tag.keyword().to_string())
                .chain((0..n).map(|i| i.to_string()))
                .collect::<Vec<_>>()
                .join("|");
            prop_assert!(parse_line(&line).is_err());
        }
    }

    /// The generator is deterministic and structurally sound for arbitrary
    /// small configurations.
    #[test]
    fn generator_sound_for_arbitrary_configs(seed in any::<u64>(),
                                             ccds in 1usize..4,
                                             frames in 1usize..4,
                                             objects in 1usize..30,
                                             error_pct in 0u32..30,
                                             presorted in any::<bool>()) {
        let cfg = GenConfig {
            seed,
            obs_id: 100,
            files: 1,
            ccds_per_file: ccds,
            frames_per_ccd: frames,
            objects_per_frame: objects,
            error_rate: error_pct as f64 / 100.0,
            presorted,
            size_skew: 0.0,
        };
        let a = generate_file(&cfg, 0);
        let b = generate_file(&cfg, 0);
        prop_assert_eq!(&a.text, &b.text, "generation must be deterministic");

        // Accounting invariants.
        prop_assert_eq!(a.line_count() as u64, a.expected.total_emitted());
        prop_assert!(a.expected.total_loadable() <= a.expected.total_emitted());
        let unparseable = a.text.lines().filter(|l| parse_line(l).is_err()).count() as u64;
        prop_assert_eq!(unparseable, a.expected.malformed_lines);

        // Every parseable line transforms.
        for line in a.text.lines() {
            if let Ok(rec) = parse_line(line) {
                prop_assert!(transform(&rec).is_ok(), "line failed transform: {}", line);
            }
        }
    }
}
