//! `skyobs` — the observability core shared by `skydb`, `skyloader`, and the
//! bench harness.
//!
//! One [`Registry`] per coordinator (or per engine) hands out cheap
//! atomic-backed handles:
//!
//! * [`CounterHandle`] — monotone named counters (`retries`,
//!   `fleet.reclaims`, `engine.rows_inserted`, …). Handles are `Arc`-backed,
//!   so hot paths pay one relaxed atomic op and never touch the registry
//!   lock after creation.
//! * [`GaugeHandle`] — last-write-wins values (modeled clock readings such
//!   as `model.network_us`).
//! * [`HistogramHandle`] — fixed log-scale (power-of-two) buckets; fully
//!   deterministic, no wall-clock reads.
//! * Span events — [`SpanRecord`]s pushed into a bounded in-memory ring
//!   (drop-oldest, with a drop counter), drainable as JSONL.
//!
//! A [`Snapshot`] is a point-in-time copy of every counter and gauge keyed
//! by name. Reports are *views* over snapshots: [`Snapshot::since`] gives
//! per-run deltas while the registry itself accumulates monotonically, and
//! [`Snapshot::with_prefix`] projects subsystem maps (e.g. every
//! `server.faults.*` counter) without per-subsystem snapshot types.
//!
//! The crate is dependency-free; JSONL rendering is hand-rolled (names are
//! programmer-chosen identifiers, but strings are escaped anyway).

#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets. Bucket `i` (for `i >= 1`) holds values in
/// `(2^(i-1), 2^i]`; bucket 0 holds `{0, 1}`.
pub const HIST_BUCKETS: usize = 64;

/// Default span-ring capacity.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// A handle to a named monotone counter. Cloning is cheap (an `Arc` bump);
/// all clones observe the same value.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A handle to a named gauge (last write wins).
#[derive(Debug, Clone, Default)]
pub struct GaugeHandle(Arc<AtomicU64>);

impl GaugeHandle {
    /// Set the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistInner {
    fn new() -> Self {
        HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A handle to a named log-scale histogram.
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<HistInner>);

/// Bucket index for a value: 0 holds `{0, 1}`, bucket `i` holds
/// `(2^(i-1), 2^i]`.
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        return 0;
    }
    ((HIST_BUCKETS as u32 - (v - 1).leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

impl HistogramHandle {
    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Approximate quantile (`q` in `[0, 1]`): the upper bound of the bucket
    /// containing the `q`-th observation. Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return if i == 0 { 1 } else { 1u64 << i };
            }
        }
        self.max()
    }
}

/// One span event: a named stage with a modeled start offset, duration, and
/// outcome, plus one free-form attribute (e.g. the table being flushed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name (`flush`, `parse`, `commit`, …).
    pub name: String,
    /// One attribute refining the stage (table name, file stem, …).
    pub attr: String,
    /// Start offset in microseconds (modeled clock, not wall clock).
    pub start_us: u64,
    /// Duration in microseconds (modeled clock).
    pub dur_us: u64,
    /// Outcome label (`ok`, `error`, `retried`, …).
    pub outcome: String,
}

impl SpanRecord {
    /// Render as one JSON object (one JSONL line, no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"type\":\"span\",\"name\":\"{}\",\"attr\":\"{}\",\"start_us\":{},\"dur_us\":{},\"outcome\":\"{}\"}}",
            escape(&self.name),
            escape(&self.attr),
            self.start_us,
            self.dur_us,
            escape(&self.outcome)
        )
    }
}

/// Record a span into a registry:
/// `span!(reg, "flush", table, start_us, dur_us, "ok")`.
#[macro_export]
macro_rules! span {
    ($reg:expr, $name:expr, $attr:expr, $start_us:expr, $dur_us:expr, $outcome:expr) => {
        $reg.span($name, $attr, $start_us, $dur_us, $outcome)
    };
}

/// The metrics registry: named counters, gauges, histograms, and a bounded
/// span ring. Cheap handles are created on first use of a name; repeated
/// lookups return handles to the same underlying atomic.
#[derive(Debug)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, CounterHandle>>,
    gauges: Mutex<BTreeMap<String, GaugeHandle>>,
    hists: Mutex<BTreeMap<String, HistogramHandle>>,
    spans: Mutex<VecDeque<SpanRecord>>,
    span_capacity: usize,
    spans_dropped: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A fresh registry with the default span-ring capacity.
    pub fn new() -> Self {
        Registry::with_span_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// A fresh registry whose span ring holds at most `capacity` records
    /// (older records are dropped first; drops are counted).
    pub fn with_span_capacity(capacity: usize) -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(VecDeque::new()),
            span_capacity: capacity.max(1),
            spans_dropped: AtomicU64::new(0),
        }
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> CounterHandle {
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut map = self.hists.lock().unwrap();
        map.entry(name.to_owned())
            .or_insert_with(|| HistogramHandle(Arc::new(HistInner::new())))
            .clone()
    }

    /// Record a span event into the ring (drop-oldest past capacity).
    pub fn span(
        &self,
        name: impl Into<String>,
        attr: impl Into<String>,
        start_us: u64,
        dur_us: u64,
        outcome: impl Into<String>,
    ) {
        self.record_span(SpanRecord {
            name: name.into(),
            attr: attr.into(),
            start_us,
            dur_us,
            outcome: outcome.into(),
        });
    }

    /// Record an already-built [`SpanRecord`].
    pub fn record_span(&self, record: SpanRecord) {
        let mut ring = self.spans.lock().unwrap();
        while ring.len() >= self.span_capacity {
            ring.pop_front();
            self.spans_dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }

    /// Copy of the current span ring, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap().iter().cloned().collect()
    }

    /// The configured span-ring bound.
    pub fn span_capacity(&self) -> usize {
        self.span_capacity
    }

    /// Spans dropped because the ring was full.
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of every counter and gauge. Histograms contribute
    /// `<name>.count` / `<name>.sum` / `<name>.max` counters (all monotone).
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: BTreeMap<String, u64> = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        for (name, h) in self.hists.lock().unwrap().iter() {
            counters.insert(format!("{name}.count"), h.count());
            counters.insert(format!("{name}.sum"), h.sum());
            counters.insert(format!("{name}.max"), h.max());
        }
        counters.insert("obs.spans_dropped".to_owned(), self.spans_dropped());
        let gauges = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        Snapshot { counters, gauges }
    }

    /// Render the full registry — counters, gauges, histogram summaries,
    /// then spans — as JSONL (one JSON object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let snap = self.snapshot();
        for (name, value) in &snap.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}\n",
                escape(name),
                value
            ));
        }
        for (name, value) in &snap.gauges {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}\n",
                escape(name),
                value
            ));
        }
        for (name, h) in self.hists.lock().unwrap().iter() {
            out.push_str(&format!(
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p99\":{}}}\n",
                escape(name),
                h.count(),
                h.sum(),
                h.max(),
                h.quantile(0.5),
                h.quantile(0.99)
            ));
        }
        for span in self.spans.lock().unwrap().iter() {
            out.push_str(&span.to_json());
            out.push('\n');
        }
        out
    }
}

/// A point-in-time copy of a registry's counters and gauges, keyed by name.
/// Counters are monotone in registry time; gauges are last-write-wins.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotone counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, u64>,
}

impl Snapshot {
    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Per-key delta against an earlier snapshot: counters subtract
    /// (saturating) the baseline, gauges keep their current value.
    pub fn since(&self, baseline: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(baseline.counter(k))))
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
        }
    }

    /// Counters under `prefix`, with the prefix stripped and zero entries
    /// dropped — the subsystem-map projection (`server.faults.` →
    /// `{reset: 1, …}`).
    pub fn with_prefix(&self, prefix: &str) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .filter(|(k, &v)| k.starts_with(prefix) && v > 0)
            .map(|(k, &v)| (k[prefix.len()..].to_owned(), v))
            .collect()
    }
}

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let reg = Registry::new();
        let a = reg.counter("retries");
        let b = reg.counter("retries");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("retries").get(), 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("retries"), 3);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn snapshot_since_is_a_per_key_delta() {
        let reg = Registry::new();
        reg.counter("a").add(5);
        let base = reg.snapshot();
        reg.counter("a").add(7);
        reg.counter("b").inc();
        let delta = reg.snapshot().since(&base);
        assert_eq!(delta.counter("a"), 7);
        assert_eq!(delta.counter("b"), 1);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let reg = Registry::new();
        reg.gauge("model.network_us").set(10);
        reg.gauge("model.network_us").set(4);
        assert_eq!(reg.snapshot().gauge("model.network_us"), 4);
    }

    #[test]
    fn prefix_projection_strips_and_drops_zeros() {
        let reg = Registry::new();
        reg.counter("server.faults.reset").inc();
        reg.counter("server.faults.busy"); // stays zero
        reg.counter("other").inc();
        let map = reg.snapshot().with_prefix("server.faults.");
        assert_eq!(map.len(), 1);
        assert_eq!(map.get("reset"), Some(&1));
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        let reg = Registry::new();
        let h = reg.histogram("flush_us");
        for v in [0, 1, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1110);
        assert_eq!(h.max(), 1000);
        assert!(h.quantile(0.5) >= 2);
        assert!(h.quantile(1.0) >= 1000);
        // Snapshot carries monotone summaries.
        let snap = reg.snapshot();
        assert_eq!(snap.counter("flush_us.count"), 7);
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn span_ring_is_bounded_and_counts_drops() {
        let reg = Registry::with_span_capacity(3);
        for i in 0..5 {
            span!(reg, "flush", format!("t{i}"), i, 10, "ok");
        }
        let spans = reg.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(reg.spans_dropped(), 2);
        assert_eq!(spans[0].attr, "t2", "oldest dropped first");
    }

    #[test]
    fn jsonl_lines_are_well_formed() {
        let reg = Registry::new();
        reg.counter("retries").add(2);
        reg.gauge("model.disk_us").set(9);
        reg.histogram("flush_us").record(17);
        reg.span("flush", "objects \"quoted\"", 0, 42, "ok");
        let jsonl = reg.to_jsonl();
        let mut names = Vec::new();
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            let tail = line.split("\"name\":\"").nth(1).expect("has a name");
            names.push(tail.split('"').next().unwrap().to_owned());
        }
        assert!(names.iter().any(|n| n == "retries"));
        assert!(names.iter().any(|n| n == "flush_us"));
        assert!(names.iter().any(|n| n == "flush"));
        assert!(jsonl.contains("objects \\\"quoted\\\""), "attr is escaped");
    }
}
