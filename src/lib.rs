//! # skyloader-repro — reproduction of the SC 2005 SkyLoader paper
//!
//! *"Optimized Data Loading for a Multi-Terabyte Sky Survey Repository"*
//! (Y. Dora Cai, Ruth Aydt, Robert J. Brunner — Supercomputing 2005).
//!
//! This facade re-exports the whole system; see the individual crates for
//! the substance:
//!
//! * [`skyloader`] — the paper's contribution: parallel bulk loading with
//!   array buffering (the `array-set`, the Fig. 3 `bulk-loading`
//!   algorithm, on-the-fly parallel file assignment, tuning, recovery);
//! * [`skydb`] — the relational database substrate (the Oracle 10g
//!   stand-in): constraints, B+-trees, WAL, transactions, a wire protocol
//!   and a multi-session server;
//! * [`skycat`] — the 23-table Palomar-Quest data model, catalog file
//!   format, synthetic generator and per-row transform pipeline;
//! * [`skyhtm`] — Hierarchical Triangular Mesh and sky coordinates;
//! * [`skysim`] — the modeled 2005 hardware (network, disks, CPUs, client
//!   memory, Condor-style cluster);
//! * [`skyobs`] — the telemetry spine: one metrics registry (counters,
//!   gauges, histograms) plus a bounded span ring, shared by the engine,
//!   server, loader fleet and reporting layer.
//!
//! Runnable examples live in `examples/`; the evaluation harness is the
//! `skyloader-bench` crate (`cargo run -p skyloader-bench --bin repro`).

pub use skycat;
pub use skydb;
pub use skyhtm;
pub use skyloader;
pub use skyobs;
pub use skysim;
